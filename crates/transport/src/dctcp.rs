//! DCTCP-style sender: ECN-echo proportional window reduction.
//!
//! Pairs with `netsim::policy::EcnMark` switches: data enqueued onto a
//! standing queue above the marking threshold carries the
//! congestion-experienced bit; the receiver echoes it on the matching
//! per-packet ACK, and the sender maintains the classic DCTCP estimate
//! `alpha ← (1−g)·alpha + g·F` of the marked fraction `F` per window,
//! multiplicatively reducing its congestion window by `alpha/2` once per
//! window that saw marks. Unmarked ACKs grow the window by `1/cwnd`
//! (TCP-style additive increase).
//!
//! Loss handling is deliberately simple — this is the paper-testbed
//! baseline, not a full TCP: a trimmed header (when run over `NdpTrim`
//! switches) acts as an explicit loss NACK that halves the window and
//! queues a retransmission; anything else lost is recovered by the RTO,
//! which collapses the window to `min_cwnd`.

use crate::{Actions, RecvBitmap, Transport, TransportTimer};
use netsim::fabric::{Fabric, NetEvent};
use netsim::{FlowId, FlowTracker, Packet, PacketKind, MTU};
use simkit::engine::EventContext;
use simkit::SimTime;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// DCTCP tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct DctcpParams {
    /// Wire MTU (data packet size cap), bytes.
    pub mtu: u32,
    /// Initial congestion window, packets.
    pub init_cwnd: u32,
    /// Floor of the congestion window, packets.
    pub min_cwnd: u32,
    /// EWMA gain `g` for the marked-fraction estimate.
    pub gain: f64,
    /// Retransmission timeout.
    pub rto: SimTime,
}

impl DctcpParams {
    /// Defaults matched to the NDP configuration: 1500 B MTU, 8-packet
    /// initial window, `g = 1/16` (the DCTCP paper's choice), 2 ms RTO.
    pub fn paper_default() -> Self {
        DctcpParams {
            mtu: MTU,
            init_cwnd: 8,
            min_cwnd: 1,
            gain: 1.0 / 16.0,
            rto: SimTime::from_ms(2),
        }
    }
}

/// Sender-side per-flow state.
#[derive(Debug)]
struct SendFlow {
    flow: FlowId,
    src: usize,
    dst: usize,
    size: u64,
    total: u32,
    next_new: u32,
    /// Segments NACKed (trim-assisted loss) awaiting retransmission.
    rtx: VecDeque<u32>,
    unacked: BTreeSet<u32>,
    /// Congestion window, packets (fractional growth).
    cwnd: f64,
    /// DCTCP marked-fraction EWMA.
    alpha: f64,
    /// ACKs counted in the current observation window.
    window_acks: u32,
    /// Marked ACKs counted in the current observation window.
    window_marks: u32,
    last_activity: SimTime,
}

impl SendFlow {
    fn done(&self) -> bool {
        self.next_new >= self.total && self.rtx.is_empty() && self.unacked.is_empty()
    }

    fn inflight(&self) -> usize {
        self.unacked.len()
    }
}

/// All DCTCP state for one host (its NIC node id + port).
#[derive(Debug)]
pub struct DctcpHost {
    /// NIC node in the fabric.
    pub nic: usize,
    /// NIC port (always 0 for single-homed hosts).
    pub nic_port: usize,
    params: DctcpParams,
    sending: HashMap<FlowId, SendFlow>,
    receiving: HashMap<FlowId, RecvBitmap>,
}

impl DctcpHost {
    /// A fresh DCTCP host for NIC `nic`.
    pub fn new(nic: usize, nic_port: usize, params: DctcpParams) -> Self {
        DctcpHost {
            nic,
            nic_port,
            params,
            sending: HashMap::new(),
            receiving: HashMap::new(),
        }
    }

    /// Tuning parameters.
    pub fn params(&self) -> &DctcpParams {
        &self.params
    }

    /// Current congestion window of `flow`, packets (tests/introspection).
    pub fn cwnd(&self, flow: FlowId) -> Option<f64> {
        self.sending.get(&flow).map(|st| st.cwnd)
    }

    /// Emit segments while the window has room.
    fn pump(
        params: &DctcpParams,
        st: &mut SendFlow,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        nic: usize,
        nic_port: usize,
    ) {
        while (st.inflight() as f64) < st.cwnd {
            let seq = if let Some(seq) = st.rtx.pop_front() {
                seq
            } else if st.next_new < st.total {
                let s = st.next_new;
                st.next_new += 1;
                s
            } else {
                return;
            };
            let size = crate::wire_size(params.mtu, st.size, seq);
            let pkt = Packet::data(st.flow, st.src, st.dst, seq, size);
            st.unacked.insert(seq);
            st.last_activity = ctx.now();
            fabric.send(ctx, nic, nic_port, pkt);
        }
    }

    /// Per-window alpha update and multiplicative decrease, applied once
    /// roughly every cwnd ACKs.
    fn roll_window(params: &DctcpParams, st: &mut SendFlow) {
        if (st.window_acks as f64) < st.cwnd.ceil() {
            return;
        }
        let f = st.window_marks as f64 / st.window_acks as f64;
        st.alpha = (1.0 - params.gain) * st.alpha + params.gain * f;
        if st.window_marks > 0 {
            st.cwnd = (st.cwnd * (1.0 - st.alpha / 2.0)).max(params.min_cwnd as f64);
        }
        st.window_acks = 0;
        st.window_marks = 0;
    }
}

impl Transport for DctcpHost {
    fn nic(&self) -> usize {
        self.nic
    }

    fn nic_port(&self) -> usize {
        self.nic_port
    }

    fn active_sends(&self) -> usize {
        self.sending.len()
    }

    fn start_flow(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        flow: FlowId,
        dst: usize,
        size: u64,
    ) -> Actions {
        let total = crate::packets_for(self.params.mtu, size);
        let mut st = SendFlow {
            flow,
            src: self.nic,
            dst,
            size,
            total,
            next_new: 0,
            rtx: VecDeque::new(),
            unacked: BTreeSet::new(),
            cwnd: self.params.init_cwnd as f64,
            alpha: 0.0,
            window_acks: 0,
            window_marks: 0,
            last_activity: ctx.now(),
        };
        Self::pump(&self.params, &mut st, fabric, ctx, self.nic, self.nic_port);
        let mut actions = Actions::default();
        actions
            .timers
            .push((ctx.now() + self.params.rto, TransportTimer::Rto(flow)));
        self.sending.insert(flow, st);
        actions
    }

    fn on_packet(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        tracker: &mut FlowTracker,
        pkt: Packet,
    ) -> Actions {
        if let PacketKind::Ack { .. } = pkt.kind {
            let (nic, port) = (self.nic, self.nic_port);
            fabric.trace_event(ctx.now(), nic, port, netsim::TraceEvent::Ack, Some(&pkt));
        }
        match pkt.kind {
            PacketKind::Data { seq, trimmed } => {
                let flow = pkt.flow;
                let sender = pkt.src;
                let total = crate::packets_for(self.params.mtu, tracker.get(flow).size);
                let st = self
                    .receiving
                    .entry(flow)
                    .or_insert_with(|| RecvBitmap::new(total));
                if trimmed && !st.complete {
                    // Trim-assisted loss signal (NdpTrim switches): NACK.
                    let nack = Packet::control(flow, self.nic, sender, PacketKind::Nack { seq });
                    fabric.send(ctx, self.nic, self.nic_port, nack);
                    return Actions::default();
                }
                // Ack every data packet, echoing the ECN mark.
                let mut ack = Packet::control(flow, self.nic, sender, PacketKind::Ack { seq });
                ack.ecn_ce = pkt.ecn_ce;
                fabric.send(ctx, self.nic, self.nic_port, ack);
                if !st.complete && st.test_and_set(seq) {
                    st.complete = tracker.deliver(flow, pkt.payload() as u64, ctx.now());
                }
            }
            PacketKind::Ack { seq } => {
                if let Some(st) = self.sending.get_mut(&pkt.flow) {
                    st.unacked.remove(&seq);
                    st.last_activity = ctx.now();
                    st.window_acks += 1;
                    if pkt.ecn_ce {
                        st.window_marks += 1;
                    } else {
                        st.cwnd += 1.0 / st.cwnd;
                    }
                    Self::roll_window(&self.params, st);
                    Self::pump(&self.params, st, fabric, ctx, self.nic, self.nic_port);
                    if st.done() {
                        self.sending.remove(&pkt.flow);
                    }
                }
            }
            PacketKind::Nack { seq } => {
                if let Some(st) = self.sending.get_mut(&pkt.flow) {
                    st.last_activity = ctx.now();
                    st.unacked.remove(&seq);
                    if !st.rtx.contains(&seq) {
                        st.rtx.push_back(seq);
                    }
                    // Loss: halve the window (sharper than a mark).
                    st.cwnd = (st.cwnd / 2.0).max(self.params.min_cwnd as f64);
                    Self::pump(&self.params, st, fabric, ctx, self.nic, self.nic_port);
                }
            }
            _ => {}
        }
        Actions::default()
    }

    fn on_timer(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        which: TransportTimer,
    ) -> Actions {
        let mut actions = Actions::default();
        let (nic, port) = (self.nic, self.nic_port);
        fabric.trace_event(ctx.now(), nic, port, netsim::TraceEvent::Timer, None);
        let TransportTimer::Rto(flow) = which else {
            return actions; // no pacer in DCTCP
        };
        if let Some(st) = self.sending.get_mut(&flow) {
            let deadline = st.last_activity + self.params.rto;
            if ctx.now() >= deadline {
                // Timeout: collapse the window and re-send the oldest
                // unacked segment.
                st.cwnd = self.params.min_cwnd as f64;
                if let Some(&seq) = st.unacked.iter().next() {
                    let size = crate::wire_size(self.params.mtu, st.size, seq);
                    let pkt = Packet::data(st.flow, st.src, st.dst, seq, size);
                    st.last_activity = ctx.now();
                    fabric.send(ctx, self.nic, self.nic_port, pkt);
                }
                actions
                    .timers
                    .push((ctx.now() + self.params.rto, TransportTimer::Rto(flow)));
            } else {
                actions.timers.push((deadline, TransportTimer::Rto(flow)));
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::fabric::{LinkSpec, QueueConfig};
    use netsim::policy::EcnMark;
    use netsim::{FlowClass, NetLogic, NetWorld};
    use simkit::Simulator;

    /// N senders → hub switch → one receiver; hub egress uses EcnMark.
    struct Incast {
        hosts: Vec<DctcpHost>,
        tracker: FlowTracker,
        flow_size: u64,
        senders: usize,
        min_cwnd_seen: f64,
    }

    impl Incast {
        fn apply(&mut self, host: usize, actions: Actions, ctx: &mut EventContext<'_, NetEvent>) {
            for (at, which) in actions.timers {
                let token = match which {
                    TransportTimer::PullPacer => (host as u64) << 32,
                    TransportTimer::Rto(f) => 1 << 60 | (host as u64) << 32 | f as u64,
                };
                ctx.schedule_at(at, NetEvent::Timer { token });
            }
        }
    }

    impl NetLogic for Incast {
        fn on_arrive(
            &mut self,
            fabric: &mut Fabric,
            ctx: &mut EventContext<'_, NetEvent>,
            node: usize,
            _port: usize,
            packet: Packet,
        ) {
            if node == 0 {
                fabric.send(ctx, 0, packet.dst - 1, packet);
                return;
            }
            let a = self.hosts[node].on_packet(fabric, ctx, &mut self.tracker, packet);
            for h in &self.hosts {
                for f in 0..self.senders as u32 {
                    if let Some(c) = h.cwnd(f) {
                        self.min_cwnd_seen = self.min_cwnd_seen.min(c);
                    }
                }
            }
            self.apply(node, a, ctx);
        }

        fn on_timer(
            &mut self,
            fabric: &mut Fabric,
            ctx: &mut EventContext<'_, NetEvent>,
            token: u64,
        ) {
            if token == u64::MAX {
                for s in 0..self.senders {
                    let host = 2 + s;
                    let id = self.tracker.register(
                        host,
                        1,
                        self.flow_size,
                        FlowClass::LowLatency,
                        ctx.now(),
                    );
                    let a = self.hosts[host].start_flow(fabric, ctx, id, 1, self.flow_size);
                    self.apply(host, a, ctx);
                }
                return;
            }
            let host = (token >> 32 & 0xFFF_FFFF) as usize;
            let which = if token >> 60 == 1 {
                TransportTimer::Rto((token & 0xFFFF_FFFF) as u32)
            } else {
                TransportTimer::PullPacer
            };
            let a = self.hosts[host].on_timer(fabric, ctx, which);
            self.apply(host, a, ctx);
        }
    }

    fn run_incast(senders: usize, flow_size: u64) -> Simulator<NetWorld<Incast>> {
        let cfg = QueueConfig::builder()
            .caps([12_000, 48_000, 24_000])
            .policy(EcnMark { mark_bytes: 12_000 })
            .build();
        let mut fabric = Fabric::new();
        let hub = fabric.add_node(1 + senders, cfg, LinkSpec::paper_default());
        let mut hosts = vec![DctcpHost::new(hub, 0, DctcpParams::paper_default())];
        for i in 0..=senders {
            let h = fabric.add_node(1, cfg, LinkSpec::paper_default());
            fabric.connect(h, 0, hub, i);
            hosts.push(DctcpHost::new(h, 0, DctcpParams::paper_default()));
        }
        let logic = Incast {
            hosts,
            tracker: FlowTracker::new(),
            flow_size,
            senders,
            min_cwnd_seen: f64::INFINITY,
        };
        let mut sim = NetWorld::new(fabric, logic).into_sim();
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: u64::MAX });
        sim.run_until(SimTime::from_ms(100));
        sim
    }

    #[test]
    fn single_flow_completes() {
        let sim = run_incast(1, 200_000);
        assert!(
            sim.world.logic.tracker.all_done(),
            "flow incomplete: {:?}",
            sim.world.logic.tracker.get(0)
        );
        assert_eq!(sim.world.logic.hosts[2].active_sends(), 0);
    }

    #[test]
    fn incast_marks_reduce_window_and_all_complete() {
        let sim = run_incast(4, 200_000);
        let w = &sim.world;
        assert!(w.logic.tracker.all_done(), "incast flows incomplete");
        assert!(
            w.fabric.counters.ecn_marked > 0,
            "incast should cross the mark threshold"
        );
        assert!(
            w.logic.min_cwnd_seen < DctcpParams::paper_default().init_cwnd as f64,
            "ECN echo never reduced any window (min seen {})",
            w.logic.min_cwnd_seen
        );
    }

    #[test]
    fn ack_echoes_mark_bit() {
        // Direct check of the receiver path: a marked data packet yields a
        // marked ACK, an unmarked one an unmarked ACK.
        let host = DctcpHost::new(1, 0, DctcpParams::paper_default());
        let mut tracker = FlowTracker::new();
        let id = tracker.register(0, 1, 2_000, FlowClass::LowLatency, SimTime::ZERO);
        let mut fabric = Fabric::new();
        let a = fabric.add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        let b = fabric.add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        fabric.connect(a, 0, b, 0);

        struct Probe {
            host_acks: Vec<Packet>,
        }
        // Run inside a minimal simulator so we have an EventContext.
        struct World {
            fabric: Fabric,
            host: DctcpHost,
            tracker: FlowTracker,
            probe: Probe,
            id: FlowId,
        }
        impl simkit::engine::EventHandler for World {
            type Event = NetEvent;
            fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
                match ev {
                    NetEvent::Timer { .. } => {
                        let mut marked = Packet::data(self.id, 0, 1, 0, 1_000);
                        marked.ecn_ce = true;
                        self.host
                            .on_packet(&mut self.fabric, ctx, &mut self.tracker, marked);
                        let clean = Packet::data(self.id, 0, 1, 1, 1_000);
                        self.host
                            .on_packet(&mut self.fabric, ctx, &mut self.tracker, clean);
                    }
                    NetEvent::Arrive { packet, .. } => self.probe.host_acks.push(packet),
                    NetEvent::PortFree { node, port } => self.fabric.on_port_free(ctx, node, port),
                    NetEvent::PauseChange { node, port, paused } => {
                        self.fabric.on_pause_change(ctx, node, port, paused)
                    }
                }
            }
        }
        let mut sim = Simulator::new(World {
            fabric,
            host,
            tracker,
            probe: Probe { host_acks: vec![] },
            id,
        });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        let acks = &sim.world.probe.host_acks;
        assert_eq!(acks.len(), 2);
        assert!(acks[0].ecn_ce, "marked data must yield marked ACK");
        assert!(!acks[1].ecn_ce, "clean data must yield clean ACK");
    }
}
