//! Go-back-N: cumulative ACKs, in-order delivery, timeout retransmission.
//!
//! The textbook sliding-window protocol, used here as the baseline
//! transport for lossy `DropTail` switches (and trivially correct under
//! lossless `Pfc`):
//!
//! * The sender keeps at most `window` segments between `base` (oldest
//!   unacknowledged) and `next` in flight.
//! * The receiver accepts only the in-order segment it `expected`; every
//!   data arrival — in-order, duplicate, or out-of-order — is answered
//!   with a cumulative ACK carrying the next expected sequence number.
//! * An ACK for `a > base` slides the window: everything below `a` is
//!   acknowledged at once (cumulative), freeing the sender to emit new
//!   segments. Duplicate ACKs (`a == base`) are ignored.
//! * When the RTO finds no progress since its arming, the sender re-sends
//!   the entire outstanding window `[base, next)` — the "go back N".
//!
//! A trimmed header (if run over `NdpTrim` switches) carries no payload,
//! so the receiver treats it like any out-of-order arrival: dup-ACK now,
//! recovery by timeout.

use crate::{Actions, Transport, TransportTimer};
use netsim::fabric::{Fabric, NetEvent};
use netsim::{FlowId, FlowTracker, Packet, PacketKind, MTU};
use simkit::engine::EventContext;
use simkit::SimTime;
use std::collections::HashMap;

/// Go-back-N tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct GoBackNParams {
    /// Wire MTU (data packet size cap), bytes.
    pub mtu: u32,
    /// Sliding window, packets.
    pub window: u32,
    /// Retransmission timeout (the only loss recovery).
    pub rto: SimTime,
}

impl GoBackNParams {
    /// Defaults matched to the NDP configuration: 1500 B MTU, 8-packet
    /// window; a 1 ms RTO (tighter than NDP's safety-net 2 ms, because
    /// here the timeout is the *primary* recovery mechanism).
    pub fn paper_default() -> Self {
        GoBackNParams {
            mtu: MTU,
            window: 8,
            rto: SimTime::from_ms(1),
        }
    }
}

/// Sender-side per-flow state.
#[derive(Debug)]
struct SendFlow {
    flow: FlowId,
    src: usize,
    dst: usize,
    size: u64,
    total: u32,
    /// Oldest unacknowledged segment (cumulative ACK floor).
    base: u32,
    /// Next never-sent segment.
    next: u32,
    /// Time of the last forward progress (send or window slide).
    last_activity: SimTime,
}

/// Receiver-side per-flow state: strictly in-order.
#[derive(Debug)]
struct RecvFlow {
    /// Next expected in-order sequence number (== cumulative ACK value).
    expected: u32,
    total: u32,
}

/// All go-back-N state for one host (its NIC node id + port).
#[derive(Debug)]
pub struct GoBackNHost {
    /// NIC node in the fabric.
    pub nic: usize,
    /// NIC port (always 0 for single-homed hosts).
    pub nic_port: usize,
    params: GoBackNParams,
    sending: HashMap<FlowId, SendFlow>,
    receiving: HashMap<FlowId, RecvFlow>,
}

impl GoBackNHost {
    /// A fresh go-back-N host for NIC `nic`.
    pub fn new(nic: usize, nic_port: usize, params: GoBackNParams) -> Self {
        GoBackNHost {
            nic,
            nic_port,
            params,
            sending: HashMap::new(),
            receiving: HashMap::new(),
        }
    }

    /// Tuning parameters.
    pub fn params(&self) -> &GoBackNParams {
        &self.params
    }

    /// The sender window base of `flow` (tests/introspection).
    pub fn base(&self, flow: FlowId) -> Option<u32> {
        self.sending.get(&flow).map(|st| st.base)
    }

    /// Emit a copy of segment `seq`.
    fn emit(
        params: &GoBackNParams,
        st: &SendFlow,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        nic: usize,
        nic_port: usize,
        seq: u32,
    ) {
        let size = crate::wire_size(params.mtu, st.size, seq);
        let pkt = Packet::data(st.flow, st.src, st.dst, seq, size);
        fabric.send(ctx, nic, nic_port, pkt);
    }

    /// Send new segments while the window has room.
    fn fill_window(
        params: &GoBackNParams,
        st: &mut SendFlow,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        nic: usize,
        nic_port: usize,
    ) {
        while st.next < st.total && st.next < st.base + params.window {
            Self::emit(params, st, fabric, ctx, nic, nic_port, st.next);
            st.next += 1;
            st.last_activity = ctx.now();
        }
    }
}

impl Transport for GoBackNHost {
    fn nic(&self) -> usize {
        self.nic
    }

    fn nic_port(&self) -> usize {
        self.nic_port
    }

    fn active_sends(&self) -> usize {
        self.sending.len()
    }

    fn start_flow(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        flow: FlowId,
        dst: usize,
        size: u64,
    ) -> Actions {
        let total = crate::packets_for(self.params.mtu, size);
        let mut st = SendFlow {
            flow,
            src: self.nic,
            dst,
            size,
            total,
            base: 0,
            next: 0,
            last_activity: ctx.now(),
        };
        Self::fill_window(&self.params, &mut st, fabric, ctx, self.nic, self.nic_port);
        let mut actions = Actions::default();
        actions
            .timers
            .push((ctx.now() + self.params.rto, TransportTimer::Rto(flow)));
        self.sending.insert(flow, st);
        actions
    }

    fn on_packet(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        tracker: &mut FlowTracker,
        pkt: Packet,
    ) -> Actions {
        if let PacketKind::Ack { .. } = pkt.kind {
            let (nic, port) = (self.nic, self.nic_port);
            fabric.trace_event(ctx.now(), nic, port, netsim::TraceEvent::Ack, Some(&pkt));
        }
        match pkt.kind {
            PacketKind::Data { seq, trimmed } => {
                let flow = pkt.flow;
                let sender = pkt.src;
                let total = crate::packets_for(self.params.mtu, tracker.get(flow).size);
                let st = self
                    .receiving
                    .entry(flow)
                    .or_insert_with(|| RecvFlow { expected: 0, total });
                if !trimmed && seq == st.expected && st.expected < st.total {
                    st.expected += 1;
                    tracker.deliver(flow, pkt.payload() as u64, ctx.now());
                }
                // Cumulative ACK for every arrival: in-order advances it,
                // duplicates/out-of-order/trimmed re-assert the old value.
                let ack =
                    Packet::control(flow, self.nic, sender, PacketKind::Ack { seq: st.expected });
                fabric.send(ctx, self.nic, self.nic_port, ack);
            }
            PacketKind::Ack { seq } => {
                if let Some(st) = self.sending.get_mut(&pkt.flow) {
                    if seq > st.base {
                        st.base = seq;
                        st.last_activity = ctx.now();
                        if st.base >= st.total {
                            self.sending.remove(&pkt.flow);
                        } else {
                            Self::fill_window(
                                &self.params,
                                st,
                                fabric,
                                ctx,
                                self.nic,
                                self.nic_port,
                            );
                        }
                    }
                }
            }
            _ => {}
        }
        Actions::default()
    }

    fn on_timer(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        which: TransportTimer,
    ) -> Actions {
        let mut actions = Actions::default();
        let (nic, port) = (self.nic, self.nic_port);
        fabric.trace_event(ctx.now(), nic, port, netsim::TraceEvent::Timer, None);
        let TransportTimer::Rto(flow) = which else {
            return actions; // no pacer in go-back-N
        };
        if let Some(st) = self.sending.get_mut(&flow) {
            let deadline = st.last_activity + self.params.rto;
            if ctx.now() >= deadline {
                // Go back N: re-send the whole outstanding window.
                for seq in st.base..st.next {
                    Self::emit(&self.params, st, fabric, ctx, self.nic, self.nic_port, seq);
                }
                st.last_activity = ctx.now();
                actions
                    .timers
                    .push((ctx.now() + self.params.rto, TransportTimer::Rto(flow)));
            } else {
                actions.timers.push((deadline, TransportTimer::Rto(flow)));
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::fabric::{LinkSpec, QueueConfig};
    use netsim::policy::DropTail;
    use netsim::{FlowClass, NetLogic, NetWorld};
    use simkit::Simulator;

    /// Two hosts back-to-back, optional random loss on the wire.
    struct TwoHost {
        hosts: Vec<GoBackNHost>,
        tracker: FlowTracker,
        flow_size: u64,
    }

    impl TwoHost {
        fn apply(&mut self, host: usize, actions: Actions, ctx: &mut EventContext<'_, NetEvent>) {
            for (at, which) in actions.timers {
                let token = match which {
                    TransportTimer::PullPacer => (host as u64) << 32,
                    TransportTimer::Rto(f) => 1 << 60 | (host as u64) << 32 | f as u64,
                };
                ctx.schedule_at(at, NetEvent::Timer { token });
            }
        }
    }

    impl NetLogic for TwoHost {
        fn on_arrive(
            &mut self,
            fabric: &mut Fabric,
            ctx: &mut EventContext<'_, NetEvent>,
            node: usize,
            _port: usize,
            packet: Packet,
        ) {
            let a = self.hosts[node].on_packet(fabric, ctx, &mut self.tracker, packet);
            self.apply(node, a, ctx);
        }

        fn on_timer(
            &mut self,
            fabric: &mut Fabric,
            ctx: &mut EventContext<'_, NetEvent>,
            token: u64,
        ) {
            if token == u64::MAX {
                let id =
                    self.tracker
                        .register(0, 1, self.flow_size, FlowClass::LowLatency, ctx.now());
                let a = self.hosts[0].start_flow(fabric, ctx, id, 1, self.flow_size);
                self.apply(0, a, ctx);
                return;
            }
            let host = (token >> 32 & 0xFFF_FFFF) as usize;
            let which = if token >> 60 == 1 {
                TransportTimer::Rto((token & 0xFFFF_FFFF) as u32)
            } else {
                TransportTimer::PullPacer
            };
            let a = self.hosts[host].on_timer(fabric, ctx, which);
            self.apply(host, a, ctx);
        }
    }

    fn run_two_host(flow_size: u64, loss: f64) -> Simulator<NetWorld<TwoHost>> {
        let cfg = QueueConfig::builder().policy(DropTail).build();
        let mut fabric = Fabric::new();
        let a = fabric.add_node(1, cfg, LinkSpec::paper_default());
        let b = fabric.add_node(1, cfg, LinkSpec::paper_default());
        fabric.connect(a, 0, b, 0);
        if loss > 0.0 {
            fabric.set_random_loss(loss, 11);
        }
        let logic = TwoHost {
            hosts: vec![
                GoBackNHost::new(a, 0, GoBackNParams::paper_default()),
                GoBackNHost::new(b, 0, GoBackNParams::paper_default()),
            ],
            tracker: FlowTracker::new(),
            flow_size,
        };
        let mut sim = Simulator::new(NetWorld::new(fabric, logic));
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: u64::MAX });
        sim.run_until(SimTime::from_ms(200));
        sim
    }

    #[test]
    fn lossless_flow_completes_and_retires_state() {
        let sim = run_two_host(100_000, 0.0);
        let t = &sim.world.logic.tracker;
        assert!(t.all_done(), "flow incomplete: {:?}", t.get(0));
        assert_eq!(sim.world.logic.hosts[0].active_sends(), 0);
        // Exactly `total` data packets delivered: no spurious
        // retransmissions without loss.
        let total = crate::packets_for(MTU, 100_000) as u64;
        // data + one ack per data packet.
        assert_eq!(sim.world.fabric.counters.delivered, 2 * total);
    }

    #[test]
    fn flow_survives_heavy_random_loss() {
        let sim = run_two_host(50_000, 0.2);
        let t = &sim.world.logic.tracker;
        assert!(t.all_done(), "go-back-N failed to recover: {:?}", t.get(0));
        assert!(
            sim.world.fabric.counters.failed_drops > 0,
            "loss injection inactive — test is vacuous"
        );
    }

    #[test]
    fn receiver_discards_out_of_order_and_dup_acks() {
        // Drive the receiver directly: segment 1 before segment 0.
        struct World {
            fabric: Fabric,
            host: GoBackNHost,
            tracker: FlowTracker,
            acks: Vec<u32>,
            id: FlowId,
        }
        impl simkit::engine::EventHandler for World {
            type Event = NetEvent;
            fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
                match ev {
                    NetEvent::Timer { .. } => {
                        // Out of order: seq 1 first (dup-ACK 0), then 0
                        // (ACK 1), then 1 again (ACK 2).
                        for seq in [1, 0, 1] {
                            let size = crate::wire_size(MTU, 2_500, seq);
                            let pkt = Packet::data(self.id, 0, 1, seq, size);
                            self.host
                                .on_packet(&mut self.fabric, ctx, &mut self.tracker, pkt);
                        }
                    }
                    NetEvent::Arrive { packet, .. } => {
                        if let PacketKind::Ack { seq } = packet.kind {
                            self.acks.push(seq);
                        }
                    }
                    NetEvent::PortFree { node, port } => self.fabric.on_port_free(ctx, node, port),
                    NetEvent::PauseChange { node, port, paused } => {
                        self.fabric.on_pause_change(ctx, node, port, paused)
                    }
                }
            }
        }
        let mut fabric = Fabric::new();
        let a = fabric.add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        let b = fabric.add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        fabric.connect(a, 0, b, 0);
        let mut tracker = FlowTracker::new();
        let id = tracker.register(0, 1, 2_500, FlowClass::LowLatency, SimTime::ZERO);
        let mut sim = Simulator::new(World {
            fabric,
            host: GoBackNHost::new(1, 0, GoBackNParams::paper_default()),
            tracker,
            acks: vec![],
            id,
        });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        assert_eq!(sim.world.acks, vec![0, 1, 2], "cumulative ACK sequence");
        // Out-of-order payload was not delivered early; total delivered
        // equals the two in-order segments.
        assert_eq!(sim.world.tracker.get(id).received, 2_500);
    }

    #[test]
    fn timeout_resends_whole_window() {
        // Sender into a dark (unwired) port: everything it emits is lost.
        // After one RTO it must go back and re-send [base, next) — the
        // full initial window — and keep base pinned at 0.
        struct World {
            fabric: Fabric,
            host: GoBackNHost,
            tracker: FlowTracker,
        }
        impl simkit::engine::EventHandler for World {
            type Event = NetEvent;
            fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
                match ev {
                    NetEvent::Timer { token: 0 } => {
                        let id =
                            self.tracker
                                .register(0, 1, 20_000, FlowClass::LowLatency, ctx.now());
                        let a = self.host.start_flow(&mut self.fabric, ctx, id, 1, 20_000);
                        for (at, which) in a.timers {
                            assert_eq!(which, TransportTimer::Rto(id));
                            ctx.schedule_at(at, NetEvent::Timer { token: 1 });
                        }
                    }
                    NetEvent::Timer { .. } => {
                        let a = self
                            .host
                            .on_timer(&mut self.fabric, ctx, TransportTimer::Rto(0));
                        // Swallow the re-armed timer after the second round
                        // so the test terminates.
                        if ctx.now() < SimTime::from_ms(2) {
                            for (at, _) in a.timers {
                                ctx.schedule_at(at, NetEvent::Timer { token: 1 });
                            }
                        }
                    }
                    NetEvent::PortFree { node, port } => self.fabric.on_port_free(ctx, node, port),
                    NetEvent::Arrive { .. } => panic!("dark port delivers nothing"),
                    NetEvent::PauseChange { .. } => {}
                }
            }
        }
        let mut fabric = Fabric::new();
        fabric.add_node(
            1,
            QueueConfig::builder().unbounded().build(),
            LinkSpec::paper_default(),
        );
        let mut sim = Simulator::new(World {
            fabric,
            host: GoBackNHost::new(0, 0, GoBackNParams::paper_default()),
            tracker: FlowTracker::new(),
        });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        let w = &sim.world;
        assert_eq!(w.host.base(0), Some(0), "no ACKs: base must not move");
        // Initial window (8) + two timeout rounds of 8 each = 24 emissions
        // into the dark port.
        assert_eq!(w.fabric.counters.dark_drops, 24);
    }
}
