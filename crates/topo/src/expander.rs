//! Static expander-graph baselines (§2.3, Figure 2 center).
//!
//! In expander proposals (Jellyfish/Xpander-style), each ToR's `u` uplinks
//! connect directly to other ToRs. We construct the inter-ToR graph as the
//! union of `u` random perfect matchings — the same building block Opera
//! uses per-slice (§3.1.2: the union of `u ≥ 3` random matchings is an
//! expander with high probability).
//!
//! Cost equivalence with a `k = 12` Opera network at α = 1.3 gives the
//! paper's `u = 7` expander: 130 racks × 5 hosts = 650 hosts.

use crate::graph::Graph;
use crate::matching::factorize_complete;
use simkit::SimRng;

/// Parameters of a static expander network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpanderParams {
    /// Number of racks. Must be even (perfect matchings).
    pub racks: usize,
    /// ToR uplinks `u` (inter-ToR degree).
    pub uplinks: usize,
    /// Hosts per rack (`d = k − u`).
    pub hosts_per_rack: usize,
}

impl ExpanderParams {
    /// The paper's cost-equivalent baseline for `k = 12`: `u = 7`,
    /// 130 racks × 5 hosts = 650 hosts.
    pub fn example_650() -> Self {
        ExpanderParams {
            racks: 130,
            uplinks: 7,
            hosts_per_rack: 5,
        }
    }

    /// Total hosts.
    pub fn hosts(&self) -> usize {
        self.racks * self.hosts_per_rack
    }
}

/// A static expander topology over racks.
#[derive(Debug, Clone)]
pub struct ExpanderTopology {
    params: ExpanderParams,
    graph: Graph,
}

impl ExpanderTopology {
    /// Build from `u` distinct random perfect matchings drawn from a random
    /// factorization of the complete rack graph (guaranteeing the matchings
    /// are pairwise disjoint, i.e. no parallel links).
    ///
    /// # Panics
    /// Panics if `racks` is odd, or `uplinks ≥ racks` (not enough disjoint
    /// perfect matchings exist).
    pub fn generate(params: ExpanderParams, seed: u64) -> Self {
        assert!(params.racks.is_multiple_of(2), "need even rack count");
        assert!(
            params.uplinks < params.racks,
            "cannot draw {} disjoint matchings on {} racks",
            params.uplinks,
            params.racks
        );
        let mut rng = SimRng::new(seed);
        let ms = factorize_complete(params.racks, &mut rng);
        let mut g = Graph::new(params.racks);
        // Skip non-perfect matchings (the identity), take the first u.
        let mut used = 0;
        for m in ms.iter() {
            if (0..params.racks).all(|r| m.is_matched(r)) {
                m.add_to_graph(&mut g, used);
                used += 1;
                if used == params.uplinks {
                    break;
                }
            }
        }
        assert_eq!(used, params.uplinks);
        ExpanderTopology { params, graph: g }
    }

    /// Parameters.
    pub fn params(&self) -> &ExpanderParams {
        &self.params
    }

    /// The inter-rack graph (degree = `uplinks` at every rack).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.params.racks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_degree_and_connected() {
        let t = ExpanderTopology::generate(ExpanderParams::example_650(), 3);
        assert_eq!(t.racks(), 130);
        for r in 0..t.racks() {
            assert_eq!(t.graph().degree(r), 7);
        }
        assert!(t.graph().is_connected());
        assert_eq!(t.params().hosts(), 650);
    }

    #[test]
    fn no_parallel_links() {
        let t = ExpanderTopology::generate(
            ExpanderParams {
                racks: 50,
                uplinks: 5,
                hosts_per_rack: 5,
            },
            11,
        );
        for r in 0..t.racks() {
            let mut dsts: Vec<usize> = t.graph().edges(r).iter().map(|e| e.to).collect();
            dsts.sort_unstable();
            dsts.dedup();
            assert_eq!(dsts.len(), 5, "parallel edge at rack {r}");
        }
    }

    #[test]
    fn short_paths_u3_and_up() {
        // u >= 3 unions of random matchings should give log-diameter graphs.
        for u in [3usize, 5, 7] {
            let t = ExpanderTopology::generate(
                ExpanderParams {
                    racks: 128,
                    uplinks: u,
                    hosts_per_rack: 5,
                },
                u as u64,
            );
            let stats = t.graph().path_length_stats();
            // Random d-regular graphs have diameter ≈ log_{d-1}(n) + O(1).
            let bound = (2.0 * (128f64).ln() / ((u - 1) as f64).ln()).ceil() as usize + 2;
            assert!(stats.max <= bound, "u={u} diameter {}", stats.max);
            assert!(stats.avg < 6.0, "u={u} avg {}", stats.avg);
            assert_eq!(stats.connectivity_loss(), 0.0);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let p = ExpanderParams {
            racks: 20,
            uplinks: 4,
            hosts_per_rack: 2,
        };
        let a = ExpanderTopology::generate(p, 5);
        let b = ExpanderTopology::generate(p, 5);
        for r in 0..20 {
            assert_eq!(a.graph().edges(r), b.graph().edges(r));
        }
    }

    #[test]
    #[should_panic(expected = "even rack count")]
    fn odd_racks_rejected() {
        ExpanderTopology::generate(
            ExpanderParams {
                racks: 7,
                uplinks: 3,
                hosts_per_rack: 3,
            },
            1,
        );
    }
}
