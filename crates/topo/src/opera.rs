//! The Opera topology: time-varying expander from offset rotor switches.
//!
//! Construction (§3.3): factor the complete rack graph into `N` disjoint
//! symmetric matchings, assign `N/u` matchings to each of the `u` circuit
//! switches, and fix a random cyclic order per switch. At run time the
//! switches step through their matchings with *offset* reconfigurations
//! (§3.1.1): the cycle is divided into *topology slices*, and at the end of
//! each slice one switch (or one per group, Appendix B) reconfigures.
//!
//! During a slice, packets are not routed through circuits of a switch with
//! an impending reconfiguration (§4.1), so the routable graph of slice `s`
//! is the union of the matchings of the other `u − g` switches — which is an
//! expander with high probability for `u − g ≥ 3` (§3.1.2).

use crate::graph::{Graph, NodeId};
use crate::lifting::factorize_lifted;
use crate::matching::{validate_factorization, Matching};
use simkit::SimRng;

/// Parameters of an Opera network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperaParams {
    /// Number of racks (`N`). Must be a multiple of `uplinks`.
    pub racks: usize,
    /// Circuit switches / ToR uplinks (`u = k/2`).
    pub uplinks: usize,
    /// Hosts per rack (`d = k/2` in a 1:1-provisioned ToR).
    pub hosts_per_rack: usize,
    /// Switches reconfiguring simultaneously (Appendix B grouping; `1` for
    /// small networks). Must divide `uplinks`.
    pub groups: usize,
}

impl OperaParams {
    /// The paper's running example: `k = 12` ⇒ 108 racks × 6 hosts = 648
    /// hosts, 6 circuit switches.
    pub fn example_648() -> Self {
        OperaParams {
            racks: 108,
            uplinks: 6,
            hosts_per_rack: 6,
            groups: 1,
        }
    }

    /// The `k = 24` scale point: 432 racks × 12 hosts = 5184 hosts.
    pub fn example_5184() -> Self {
        OperaParams {
            racks: 432,
            uplinks: 12,
            hosts_per_rack: 12,
            groups: 1,
        }
    }

    /// Derive parameters from a ToR radix `k` (1:1 provisioned: `u = d =
    /// k/2`) and a number of racks.
    pub fn from_radix(k: usize, racks: usize) -> Self {
        OperaParams {
            racks,
            uplinks: k / 2,
            hosts_per_rack: k / 2,
            groups: 1,
        }
    }

    /// Total host count.
    pub fn hosts(&self) -> usize {
        self.racks * self.hosts_per_rack
    }
}

/// A fully generated Opera topology: the factorization, its assignment to
/// circuit switches, and slice bookkeeping.
#[derive(Debug, Clone)]
pub struct OperaTopology {
    params: OperaParams,
    /// `assigned[switch][position]` = matching implemented at that cycle
    /// position.
    assigned: Vec<Vec<Matching>>,
    /// Slices per full cycle (`N / groups`).
    slices_per_cycle: usize,
    /// Slices between a given switch's reconfigurations (`u / groups`).
    stride: usize,
}

impl OperaTopology {
    /// Generate a topology per §3.3 with the given seed.
    ///
    /// # Panics
    /// Panics unless `uplinks` divides `racks`, `groups` divides `uplinks`,
    /// and all parameters are non-zero.
    pub fn generate(params: OperaParams, seed: u64) -> Self {
        assert!(params.racks > 0 && params.uplinks > 0 && params.groups > 0);
        assert!(
            params.racks.is_multiple_of(params.uplinks),
            "uplinks ({}) must divide racks ({})",
            params.uplinks,
            params.racks
        );
        assert!(
            params.uplinks.is_multiple_of(params.groups),
            "groups ({}) must divide uplinks ({})",
            params.groups,
            params.uplinks
        );
        let mut rng = SimRng::new(seed);
        let n = params.racks;
        let u = params.uplinks;

        // 1. Randomly factor the complete graph into N disjoint matchings.
        let mut ms = factorize_lifted(n, &mut rng);
        debug_assert!(validate_factorization(&ms, n).is_ok());

        // 2. Randomly assign N/u matchings to each switch.
        rng.shuffle(&mut ms);
        let per_switch = n / u;
        let mut assigned: Vec<Vec<Matching>> = Vec::with_capacity(u);
        for _ in 0..u {
            let mut mine: Vec<Matching> = ms.drain(..per_switch).collect();
            // 3. Random cyclic order per switch.
            rng.shuffle(&mut mine);
            assigned.push(mine);
        }

        let stride = u / params.groups;
        OperaTopology {
            params,
            assigned,
            slices_per_cycle: n / params.groups,
            stride,
        }
    }

    /// Generate a topology and *validate* it: §3.3 notes a random
    /// realization may occasionally lack good properties ("it would be
    /// trivial to generate and test additional realizations at design
    /// time"). This retries successive seeds until every slice graph is
    /// connected, returning the topology and the seed that produced it.
    ///
    /// # Panics
    /// Panics if no valid realization is found within `max_tries` seeds
    /// (never observed for sane parameters with `max_tries ≥ 16`).
    pub fn generate_validated(params: OperaParams, seed: u64, max_tries: u64) -> (Self, u64) {
        for s in seed..seed + max_tries {
            let t = Self::generate(params, s);
            let ok = (0..t.slices_per_cycle()).all(|i| t.slice(i).graph().is_connected());
            if ok {
                return (t, s);
            }
        }
        panic!("no connected Opera realization within {max_tries} seeds of {seed}");
    }

    /// Parameters used to generate this topology.
    pub fn params(&self) -> &OperaParams {
        &self.params
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.params.racks
    }

    /// Number of circuit switches.
    pub fn switches(&self) -> usize {
        self.params.uplinks
    }

    /// Topology slices per full cycle.
    pub fn slices_per_cycle(&self) -> usize {
        self.slices_per_cycle
    }

    /// Matchings each switch cycles through (`N/u`).
    pub fn matchings_per_switch(&self) -> usize {
        self.assigned[0].len()
    }

    /// Matching implemented by `switch` at cycle `position`.
    pub fn matching(&self, switch: usize, position: usize) -> &Matching {
        &self.assigned[switch][position]
    }

    /// Number of completed reconfigurations of `switch` before slice `s`
    /// (within one cycle, `s < slices_per_cycle`).
    fn advances_before(&self, switch: usize, s: usize) -> usize {
        let phase = switch % self.stride;
        if s > phase {
            (s - phase - 1) / self.stride + 1
        } else {
            0
        }
    }

    /// Index into `assigned[switch]` of the matching active during slice
    /// `s` (slice indices taken mod the cycle).
    pub fn position_at(&self, switch: usize, slice: usize) -> usize {
        let s = slice % self.slices_per_cycle;
        self.advances_before(switch, s) % self.matchings_per_switch()
    }

    /// Switches with an *impending reconfiguration* during slice `s` — the
    /// ones routing must avoid (§3.1.1, §4.1). Exactly `groups` switches.
    pub fn reconfiguring(&self, slice: usize) -> Vec<usize> {
        let s = slice % self.slices_per_cycle;
        (0..self.params.uplinks)
            .filter(|&j| j % self.stride == s % self.stride)
            .collect()
    }

    /// The routable view of slice `s`.
    pub fn slice(&self, slice: usize) -> SliceView<'_> {
        let s = slice % self.slices_per_cycle;
        let reconf = self.reconfiguring(s);
        let mut current = Vec::with_capacity(self.params.uplinks);
        for j in 0..self.params.uplinks {
            current.push(self.position_at(j, s));
        }
        SliceView {
            topo: self,
            slice: s,
            reconfiguring: reconf,
            current,
        }
    }

    /// Slices (one cycle) during which rack pair `(a, b)` has a usable
    /// direct circuit: the matching containing the pair is instantiated and
    /// its switch is not about to reconfigure. Empty only for `a == b`.
    pub fn direct_slices(&self, a: NodeId, b: NodeId) -> Vec<usize> {
        if a == b {
            return Vec::new();
        }
        let (sw, pos) = self
            .locate_pair(a, b)
            .expect("every pair appears in exactly one matching");
        (0..self.slices_per_cycle)
            .filter(|&s| self.position_at(sw, s) == pos && !self.reconfiguring(s).contains(&sw))
            .collect()
    }

    /// Which `(switch, position)` implements the circuit between `a` and
    /// `b`, or `None` when `a == b`.
    pub fn locate_pair(&self, a: NodeId, b: NodeId) -> Option<(usize, usize)> {
        if a == b {
            return None;
        }
        for (sw, mats) in self.assigned.iter().enumerate() {
            for (pos, m) in mats.iter().enumerate() {
                if m.partner(a) == b {
                    return Some((sw, pos));
                }
            }
        }
        unreachable!("complete factorization covers every pair")
    }
}

/// The routable topology during one slice.
#[derive(Debug, Clone)]
pub struct SliceView<'a> {
    topo: &'a OperaTopology,
    slice: usize,
    reconfiguring: Vec<usize>,
    /// `current[switch]` = position of the active matching.
    current: Vec<usize>,
}

impl<'a> SliceView<'a> {
    /// Slice index within the cycle.
    pub fn slice(&self) -> usize {
        self.slice
    }

    /// Switches excluded from routing this slice.
    pub fn reconfiguring(&self) -> &[usize] {
        &self.reconfiguring
    }

    /// The active matching of `switch` this slice (even if reconfiguring —
    /// its circuits are physically up, just not routable for new packets).
    pub fn matching_of(&self, switch: usize) -> &'a Matching {
        self.topo.matching(switch, self.current[switch])
    }

    /// Routable rack graph: union of the matchings of all non-reconfiguring
    /// switches. Edge `port` is the circuit-switch index.
    pub fn graph(&self) -> Graph {
        let mut g = Graph::new(self.topo.racks());
        for sw in 0..self.topo.switches() {
            if self.reconfiguring.contains(&sw) {
                continue;
            }
            self.matching_of(sw).add_to_graph(&mut g, sw);
        }
        g
    }

    /// Full physical graph including the reconfiguring switches' circuits.
    pub fn graph_full(&self) -> Graph {
        let mut g = Graph::new(self.topo.racks());
        for sw in 0..self.topo.switches() {
            self.matching_of(sw).add_to_graph(&mut g, sw);
        }
        g
    }

    /// Direct (single-hop) destinations of `rack` this slice, as
    /// `(destination rack, circuit switch)` pairs — the bulk table of §4.3.
    pub fn direct_destinations(&self, rack: NodeId) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        for sw in 0..self.topo.switches() {
            if self.reconfiguring.contains(&sw) {
                continue;
            }
            let m = self.matching_of(sw);
            if m.is_matched(rack) {
                out.push((m.partner(rack), sw));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OperaTopology {
        // 24 racks, 4 switches, groups=1 -> 24 slices, 6 matchings/switch.
        OperaTopology::generate(
            OperaParams {
                racks: 24,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            42,
        )
    }

    #[test]
    fn schedule_advances_match_iterative_simulation() {
        let t = small();
        let u = t.switches();
        let mut pos = vec![0usize; u];
        for s in 0..t.slices_per_cycle() * 2 {
            for (j, &p) in pos.iter().enumerate() {
                assert_eq!(
                    t.position_at(j, s),
                    p,
                    "switch {j} slice {s} disagrees with iterative schedule"
                );
            }
            // End of slice s: the reconfiguring switches advance.
            for &j in &t.reconfiguring(s) {
                pos[j] = (pos[j] + 1) % t.matchings_per_switch();
            }
        }
    }

    #[test]
    fn each_switch_cycles_all_matchings() {
        let t = small();
        for j in 0..t.switches() {
            let mut seen = vec![false; t.matchings_per_switch()];
            for s in 0..t.slices_per_cycle() {
                seen[t.position_at(j, s)] = true;
            }
            assert!(seen.iter().all(|&x| x), "switch {j} missed a matching");
        }
    }

    #[test]
    fn exactly_one_switch_reconfigures_per_slice() {
        let t = small();
        for s in 0..t.slices_per_cycle() {
            assert_eq!(t.reconfiguring(s).len(), 1);
        }
        // Round-robin across switches.
        let seq: Vec<usize> = (0..8).map(|s| t.reconfiguring(s)[0]).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn grouping_reduces_cycle() {
        let t = OperaTopology::generate(
            OperaParams {
                racks: 24,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 2,
            },
            42,
        );
        assert_eq!(t.slices_per_cycle(), 12);
        for s in 0..t.slices_per_cycle() {
            assert_eq!(t.reconfiguring(s).len(), 2);
        }
        // Each switch still visits all its matchings.
        for j in 0..t.switches() {
            let mut seen = vec![false; t.matchings_per_switch()];
            for s in 0..t.slices_per_cycle() {
                seen[t.position_at(j, s)] = true;
            }
            assert!(seen.iter().all(|&x| x));
        }
    }

    #[test]
    fn every_pair_gets_direct_circuit_each_cycle() {
        let t = small();
        for a in 0..t.racks() {
            for b in 0..t.racks() {
                if a == b {
                    assert!(t.direct_slices(a, b).is_empty());
                    continue;
                }
                let slices = t.direct_slices(a, b);
                assert!(
                    !slices.is_empty(),
                    "pair ({a},{b}) never has a usable direct circuit"
                );
                // Each matching is up for `stride` slices, one of which is
                // the impending-reconfiguration slice -> stride-1 usable.
                assert_eq!(slices.len(), t.stride - 1, "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn slice_graphs_connected_and_degree_bounded() {
        let t = small();
        for s in 0..t.slices_per_cycle() {
            let g = t.slice(s).graph();
            assert!(g.is_connected(), "slice {s} disconnected");
            for r in 0..t.racks() {
                assert!(g.degree(r) < t.switches());
            }
        }
    }

    #[test]
    fn direct_destinations_consistent_with_graph() {
        let t = small();
        let sv = t.slice(5);
        let g = sv.graph();
        for r in 0..t.racks() {
            let direct = sv.direct_destinations(r);
            let mut from_graph: Vec<(usize, usize)> =
                g.edges(r).iter().map(|e| (e.to, e.port)).collect();
            let mut d = direct.clone();
            d.sort_unstable();
            from_graph.sort_unstable();
            assert_eq!(d, from_graph);
        }
    }

    #[test]
    fn example_648_properties() {
        let t = OperaTopology::generate(OperaParams::example_648(), 7);
        assert_eq!(t.racks(), 108);
        assert_eq!(t.switches(), 6);
        assert_eq!(t.slices_per_cycle(), 108);
        assert_eq!(t.matchings_per_switch(), 18);
        assert_eq!(t.params().hosts(), 648);
        // Spot-check a few slices for connectivity.
        for s in [0usize, 17, 54, 107] {
            assert!(t.slice(s).graph().is_connected());
        }
    }

    #[test]
    fn full_graph_includes_reconfiguring_switch() {
        let t = small();
        let sv = t.slice(0);
        let g_full = sv.graph_full();
        let g_routable = sv.graph();
        assert!(g_full.edge_count() >= g_routable.edge_count());
    }

    #[test]
    fn locate_pair_finds_unique_home() {
        let t = small();
        let (sw, pos) = t.locate_pair(0, 5).unwrap();
        assert_eq!(t.matching(sw, pos).partner(0), 5);
        assert!(t.locate_pair(3, 3).is_none());
    }
}
