//! Graph lifting (§3.3): build a factorization of the complete graph on
//! `2n` racks from one on `n` racks.
//!
//! "Because this factorization can be computationally expensive for large
//! networks, we employ graph lifting to generate large factorizations from
//! smaller ones."
//!
//! The lift views the `2n` racks as two copies of the `n`-rack network:
//!
//! * each of the `n` base matchings is applied *simultaneously in both
//!   copies*, covering all intra-copy pairs (and the diagonal, since every
//!   rack self-pairs exactly once in the base factorization);
//! * the complete bipartite graph between the copies decomposes into `n`
//!   cyclic-shift perfect matchings `(v,0) ↔ (v+s mod n, 1)`.
//!
//! Together: exactly `2n` disjoint symmetric matchings covering the all-ones
//! matrix on `2n` racks — the same invariant `factorize_complete` provides,
//! at a fraction of the construction cost for large `n`.

use crate::matching::Matching;
use simkit::SimRng;

/// Lift a factorization of the `n`-rack complete graph (as produced by
/// [`crate::matching::factorize_complete`]) to one of the `2n`-rack complete
/// graph. Rack `v` of copy `c ∈ {0,1}` becomes rack `v + c·n`.
///
/// # Panics
/// Panics if `base` is not a factorization of size `n = base.len()` (each
/// matching must span `n` racks).
pub fn lift_factorization(base: &[Matching]) -> Vec<Matching> {
    let n = base.len();
    assert!(n > 0, "empty base factorization");
    let mut out = Vec::with_capacity(2 * n);

    // Intra-copy matchings: base matching applied in both copies at once.
    for m in base {
        assert_eq!(m.len(), n, "base matching of wrong width");
        let mut pair = vec![0usize; 2 * n];
        for v in 0..n {
            let p = m.partner(v);
            pair[v] = p;
            pair[v + n] = p + n;
        }
        out.push(Matching::new(pair));
    }

    // Cross-copy matchings: cyclic shifts of the bipartite complete graph.
    for s in 0..n {
        let mut pair = vec![0usize; 2 * n];
        for v in 0..n {
            let w = (v + s) % n + n;
            pair[v] = w;
            pair[w] = v;
        }
        out.push(Matching::new(pair));
    }

    out
}

/// Produce a factorization of `n` racks, using lifting whenever `n` is even
/// and large: recursively factorize `n/2` and lift, randomizing labels at
/// the top level. Falls back to the direct round-robin construction for odd
/// or small `n`. Produces the same invariants as `factorize_complete`.
pub fn factorize_lifted(n: usize, rng: &mut SimRng) -> Vec<Matching> {
    const DIRECT_THRESHOLD: usize = 64;
    fn inner(n: usize) -> Vec<Matching> {
        if n % 2 == 1 || n <= DIRECT_THRESHOLD {
            crate::matching::canonical_factorization(n)
        } else {
            lift_factorization(&inner(n / 2))
        }
    }
    let ms = inner(n);
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let mut ms: Vec<Matching> = ms.iter().map(|m| m.relabel(&perm)).collect();
    rng.shuffle(&mut ms);
    // The lift is highly structured (copies + cyclic shifts); Kempe-mix to
    // obtain a genuinely random-looking factorization (see
    // `matching::factorize_complete`).
    crate::matching::kempe_mix(
        &mut ms,
        rng,
        crate::matching::DEFAULT_MIX_STEPS_PER_RACK * n,
    );
    ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{canonical_factorization, validate_factorization};

    #[test]
    fn lift_of_odd_base_is_complete() {
        let base = canonical_factorization(9);
        let lifted = lift_factorization(&base);
        validate_factorization(&lifted, 18).unwrap();
    }

    #[test]
    fn lift_of_even_base_is_complete() {
        let base = canonical_factorization(8);
        let lifted = lift_factorization(&base);
        validate_factorization(&lifted, 16).unwrap();
    }

    #[test]
    fn double_lift() {
        let base = canonical_factorization(5);
        let l1 = lift_factorization(&base);
        let l2 = lift_factorization(&l1);
        validate_factorization(&l2, 20).unwrap();
    }

    #[test]
    fn factorize_lifted_valid_various() {
        let mut rng = SimRng::new(99);
        for n in [6usize, 27, 108, 128, 216] {
            let ms = factorize_lifted(n, &mut rng);
            validate_factorization(&ms, n).unwrap();
        }
    }

    #[test]
    fn lifted_matches_direct_structure() {
        // Same invariants as the direct factorization: count circuits.
        let mut rng = SimRng::new(7);
        let n = 108;
        let lifted = factorize_lifted(n, &mut rng);
        let total: usize = lifted.iter().map(|m| m.circuit_count()).sum();
        assert_eq!(total, n * (n - 1) / 2);
    }
}
