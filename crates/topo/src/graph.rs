//! Rack-level multigraphs and shortest-path machinery.
//!
//! Nodes are racks (ToR switches); edges are inter-ToR links, possibly
//! several between the same pair of racks (parallel circuits through
//! different switches). Each directed edge is labelled with the uplink it
//! uses, so routing tables can name a concrete output port.

use std::collections::VecDeque;

/// Index of a node (rack / switch) in a [`Graph`].
pub type NodeId = usize;

/// A directed edge with the uplink port it uses at the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Destination node.
    pub to: NodeId,
    /// Uplink/port index at the source used by this edge.
    pub port: usize,
}

/// A directed multigraph stored as per-node adjacency lists.
///
/// All topologies in this reproduction are symmetric (every link is
/// full-duplex), so builders insert both directions, but the structure does
/// not require it.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
}

impl Graph {
    /// An edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add a directed edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, port: usize) {
        self.adj[from].push(Edge { to, port });
    }

    /// Add both directions of a full-duplex link, with the same port label
    /// on each side.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, port: usize) {
        self.add_edge(a, b, port);
        self.add_edge(b, a, port);
    }

    /// Out-edges of `node`.
    pub fn edges(&self, node: NodeId) -> &[Edge] {
        &self.adj[node]
    }

    /// Out-degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node].len()
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum()
    }

    /// BFS distances (in hops) from `src` to every node. Unreachable nodes
    /// get `usize::MAX`.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.len()];
        dist[src] = 0;
        let mut q = VecDeque::new();
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            let d = dist[v] + 1;
            for e in &self.adj[v] {
                if dist[e.to] == usize::MAX {
                    dist[e.to] = d;
                    q.push_back(e.to);
                }
            }
        }
        dist
    }

    /// All-pairs path-length statistics over *distinct* reachable pairs.
    /// Returns `(average, maximum, reachable pair count, total pair count)`.
    pub fn path_length_stats(&self) -> PathStats {
        let n = self.len();
        let mut sum = 0usize;
        let mut max = 0usize;
        let mut reachable = 0usize;
        for src in 0..n {
            let dist = self.bfs_distances(src);
            for (dst, &d) in dist.iter().enumerate() {
                if dst == src {
                    continue;
                }
                if d != usize::MAX {
                    sum += d;
                    max = max.max(d);
                    reachable += 1;
                }
            }
        }
        PathStats {
            avg: if reachable == 0 {
                0.0
            } else {
                sum as f64 / reachable as f64
            },
            max,
            reachable_pairs: reachable,
            total_pairs: n * n.saturating_sub(1),
        }
    }

    /// Histogram of shortest-path lengths over all ordered pairs; index `i`
    /// counts pairs at distance `i`. Unreachable pairs are not counted.
    pub fn path_length_histogram(&self) -> Vec<u64> {
        let mut hist: Vec<u64> = Vec::new();
        for src in 0..self.len() {
            for (dst, &d) in self.bfs_distances(src).iter().enumerate() {
                if dst != src && d != usize::MAX {
                    if d >= hist.len() {
                        hist.resize(d + 1, 0);
                    }
                    hist[d] += 1;
                }
            }
        }
        hist
    }

    /// ECMP next-hop table *toward a destination*: for each node `v`, the
    /// set of out-edges of `v` that lie on some shortest path to `dst`.
    /// `table[dst][v]` is empty when `v == dst` or `dst` is unreachable.
    pub fn next_hops_to(&self, dst: NodeId) -> Vec<Vec<Edge>> {
        let dist = self.bfs_distances(dst); // distances TO dst == FROM dst (symmetric graphs)
        let mut table = vec![Vec::new(); self.len()];
        for v in 0..self.len() {
            if v == dst || dist[v] == usize::MAX {
                continue;
            }
            for e in &self.adj[v] {
                if dist[e.to] != usize::MAX && dist[e.to] + 1 == dist[v] {
                    table[v].push(*e);
                }
            }
        }
        table
    }

    /// True when every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let d = self.bfs_distances(0);
        d.iter().all(|&x| x != usize::MAX)
    }
}

/// Compressed-sparse-row view of a [`Graph`]'s adjacency.
///
/// All edges live in one flat array ordered exactly as the per-node
/// adjacency lists enumerate them, so the flat edge id `offset(v) + i`
/// names `graph.edges(v)[i]`. Shortest-path inner loops index this
/// layout instead of chasing one heap allocation per node, and per-edge
/// state arrays (costs, loads) share the same id space.
#[derive(Debug, Clone)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` is the edge-id range of node `v`.
    offsets: Vec<usize>,
    /// Destination node per flat edge id.
    to: Vec<u32>,
    /// Source node per flat edge id (reverse lookup for path walks).
    from: Vec<u32>,
}

impl Csr {
    /// Flatten `g`'s adjacency lists, preserving their edge order.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut to = Vec::with_capacity(g.edge_count());
        let mut from = Vec::with_capacity(g.edge_count());
        offsets.push(0);
        for v in 0..n {
            for e in g.edges(v) {
                to.push(e.to as u32);
                from.push(v as u32);
            }
            offsets.push(to.len());
        }
        Csr { offsets, to, from }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total directed edge count (the flat edge-id space).
    pub fn edge_count(&self) -> usize {
        self.to.len()
    }

    /// First flat edge id of `v`'s out-edges (`graph.edges(v)[i]` is edge
    /// `offset(v) + i`).
    pub fn offset(&self, v: NodeId) -> usize {
        self.offsets[v]
    }

    /// Destination nodes of `v`'s out-edges, in adjacency-list order.
    pub fn targets(&self, v: NodeId) -> &[u32] {
        &self.to[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The flat target array over all nodes; `targets(v)` is the
    /// `offset(v)..offset(v + 1)` window of this slice. Callers that
    /// already know a node's offset (e.g. degree-uniform graphs, where
    /// it is `v * degree`) can slice directly and skip the offset
    /// loads.
    #[inline(always)]
    pub fn targets_flat(&self) -> &[u32] {
        &self.to
    }

    /// Source node of flat edge `eid`.
    pub fn from(&self, eid: usize) -> NodeId {
        self.from[eid] as NodeId
    }

    /// Destination node of flat edge `eid`.
    pub fn to(&self, eid: usize) -> NodeId {
        self.to[eid] as NodeId
    }
}

/// Summary of all-pairs shortest-path lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStats {
    /// Mean shortest-path length over reachable ordered pairs.
    pub avg: f64,
    /// Diameter (longest shortest path among reachable pairs).
    pub max: usize,
    /// Number of ordered pairs with a finite path.
    pub reachable_pairs: usize,
    /// Number of ordered pairs total (`n * (n-1)`).
    pub total_pairs: usize,
}

impl PathStats {
    /// Fraction of ordered node pairs that are disconnected.
    pub fn connectivity_loss(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            1.0 - self.reachable_pairs as f64 / self.total_pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_link(i, (i + 1) % n, 0);
        }
        g
    }

    #[test]
    fn bfs_on_ring() {
        let g = ring(6);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn path_stats_ring() {
        let g = ring(6);
        let s = g.path_length_stats();
        assert_eq!(s.max, 3);
        // distances from any node: 1,2,3,2,1 -> avg 9/5
        assert!((s.avg - 9.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.reachable_pairs, 30);
        assert_eq!(s.connectivity_loss(), 0.0);
    }

    #[test]
    fn histogram_matches_stats() {
        let g = ring(8);
        let h = g.path_length_histogram();
        assert_eq!(h.iter().sum::<u64>(), 8 * 7);
        assert_eq!(h[0], 0);
        assert_eq!(h[1], 16); // each node has 2 neighbors
        assert_eq!(h[4], 8); // antipodal
    }

    #[test]
    fn disconnected_components() {
        let mut g = Graph::new(4);
        g.add_link(0, 1, 0);
        g.add_link(2, 3, 0);
        assert!(!g.is_connected());
        let s = g.path_length_stats();
        assert_eq!(s.reachable_pairs, 4);
        assert!((s.connectivity_loss() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn next_hops_are_shortest() {
        let g = ring(6);
        let t = g.next_hops_to(3);
        // node 0 is distance 3 from node 3; both directions are shortest.
        assert_eq!(t[0].len(), 2);
        // node 2 must go to 3 directly.
        assert_eq!(t[2].len(), 1);
        assert_eq!(t[2][0].to, 3);
        // destination has no next hops.
        assert!(t[3].is_empty());
    }

    #[test]
    fn multigraph_parallel_edges() {
        let mut g = Graph::new(2);
        g.add_link(0, 1, 0);
        g.add_link(0, 1, 1);
        assert_eq!(g.degree(0), 2);
        let t = g.next_hops_to(1);
        assert_eq!(t[0].len(), 2, "both parallel links are shortest paths");
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_connected());
        assert!(g.is_empty());
        assert_eq!(g.path_length_stats().total_pairs, 0);
    }

    #[test]
    fn csr_matches_adjacency_order() {
        let mut g = Graph::new(3);
        g.add_link(0, 1, 0);
        g.add_link(0, 2, 1);
        g.add_edge(1, 2, 0);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.nodes(), 3);
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in 0..g.len() {
            let off = csr.offset(v);
            let targets = csr.targets(v);
            assert_eq!(targets.len(), g.degree(v));
            for (i, e) in g.edges(v).iter().enumerate() {
                let eid = off + i;
                assert_eq!(csr.to(eid), e.to);
                assert_eq!(csr.from(eid), v);
                assert_eq!(targets[i] as usize, e.to);
            }
        }
    }

    #[test]
    fn csr_empty_and_isolated_nodes() {
        let csr = Csr::from_graph(&Graph::new(0));
        assert_eq!(csr.nodes(), 0);
        assert_eq!(csr.edge_count(), 0);
        let mut g = Graph::new(4); // node 2 isolated
        g.add_edge(0, 1, 0);
        g.add_edge(3, 1, 0);
        let csr = Csr::from_graph(&g);
        assert!(csr.targets(2).is_empty());
        assert_eq!(csr.targets(3), &[1]);
    }
}
