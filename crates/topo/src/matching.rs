//! Matchings and the complete-graph factorization of §3.3.
//!
//! Opera's topology generation "randomly factors a complete graph (i.e.
//! N×N all-ones matrix) into N disjoint (and symmetric) matchings". Because
//! the all-ones matrix includes the diagonal, each rack is paired with
//! *itself* exactly once across the factorization:
//!
//! * odd `N` — the classic round-robin (circle) schedule yields `N`
//!   near-perfect matchings, each leaving exactly one rack self-paired;
//! * even `N` — the circle schedule yields `N−1` perfect matchings, and the
//!   identity matching (all racks self-paired) completes the count to `N`.
//!
//! A self-pairing contributes no inter-rack circuit: during that slot the
//! corresponding circuit-switch port is effectively dark for the rack.
//!
//! Randomization applies a uniform vertex relabeling to the canonical
//! schedule, which preserves the disjoint/complete structure.

use crate::graph::{Graph, NodeId};
use simkit::SimRng;

/// A symmetric matching over `n` racks, possibly with self-pairings.
///
/// `pair[i] == j` means racks `i` and `j` are connected by a circuit
/// (`pair[j] == i` always holds); `pair[i] == i` means rack `i` has no
/// circuit in this matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    pair: Vec<NodeId>,
}

impl Matching {
    /// Build from an explicit pairing vector.
    ///
    /// # Panics
    /// Panics if the vector is not an involution (`pair[pair[i]] != i`).
    pub fn new(pair: Vec<NodeId>) -> Self {
        for (i, &j) in pair.iter().enumerate() {
            assert!(j < pair.len(), "pair out of range");
            assert_eq!(pair[j], i, "matching not symmetric at {i}->{j}");
        }
        Matching { pair }
    }

    /// The identity matching: every rack self-paired.
    pub fn identity(n: usize) -> Self {
        Matching {
            pair: (0..n).collect(),
        }
    }

    /// Number of racks.
    pub fn len(&self) -> usize {
        self.pair.len()
    }

    /// True when over zero racks.
    pub fn is_empty(&self) -> bool {
        self.pair.is_empty()
    }

    /// Partner of `rack`, or `rack` itself when self-paired.
    pub fn partner(&self, rack: NodeId) -> NodeId {
        self.pair[rack]
    }

    /// True when `rack` has an inter-rack circuit here.
    pub fn is_matched(&self, rack: NodeId) -> bool {
        self.pair[rack] != rack
    }

    /// Number of inter-rack circuits (pairs, not endpoints).
    pub fn circuit_count(&self) -> usize {
        self.pair
            .iter()
            .enumerate()
            .filter(|&(i, &j)| i < j)
            .count()
    }

    /// Iterate `(a, b)` circuit pairs with `a < b`.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.pair
            .iter()
            .enumerate()
            .filter(|&(i, &j)| i < j)
            .map(|(i, &j)| (i, j))
    }

    /// Apply a vertex relabeling `perm` (new label of old vertex `v` is
    /// `perm[v]`), producing the conjugated matching.
    pub fn relabel(&self, perm: &[NodeId]) -> Matching {
        let n = self.pair.len();
        assert_eq!(perm.len(), n);
        let mut out = vec![0; n];
        for (v, &p) in self.pair.iter().enumerate() {
            out[perm[v]] = perm[p];
        }
        Matching { pair: out }
    }

    /// Add this matching's circuits to `g`, labeling edges with `port`.
    pub fn add_to_graph(&self, g: &mut Graph, port: usize) {
        for (a, b) in self.pairs() {
            g.add_link(a, b, port);
        }
    }
}

/// Factor the complete graph on `n` racks (diagonal included) into exactly
/// `n` disjoint symmetric matchings: construct the round-robin schedule,
/// then *randomize the factorization itself* with Kempe-chain mixing.
///
/// Mere vertex relabeling is not enough: the circle method's rounds are
/// rotations of each other, so unions of a few relabeled rounds form
/// circulant-like graphs with Θ(n) diameter — terrible expanders. The
/// Kempe-chain walk (pick two matchings, swap edge colors along a random
/// subset of the cycles/paths of their union) is the standard MCMC over
/// 1-factorizations and destroys that structure while preserving all
/// invariants (asserted in tests):
///
/// * exactly `n` matchings,
/// * every unordered rack pair appears in exactly one matching,
/// * every rack is self-paired in exactly one matching,
/// * matchings are pairwise edge-disjoint.
pub fn factorize_complete(n: usize, rng: &mut SimRng) -> Vec<Matching> {
    let mut ms = factorize_complete_unmixed(n, rng);
    kempe_mix(&mut ms, rng, DEFAULT_MIX_STEPS_PER_RACK * n);
    ms
}

/// Kempe-mixing steps per rack used by [`factorize_complete`].
pub const DEFAULT_MIX_STEPS_PER_RACK: usize = 20;

/// The relabeled-but-unmixed factorization (building block for
/// [`factorize_complete`] and the lifting fast path).
pub fn factorize_complete_unmixed(n: usize, rng: &mut SimRng) -> Vec<Matching> {
    assert!(n >= 1, "need at least one rack");
    let canonical = canonical_factorization(n);
    let mut perm: Vec<NodeId> = (0..n).collect();
    rng.shuffle(&mut perm);
    canonical.into_iter().map(|m| m.relabel(&perm)).collect()
}

/// Randomize a 1-factorization in place by `steps` Kempe-chain moves.
///
/// Each move picks two distinct matchings; their union (self-loops ignored)
/// is a disjoint set of even cycles and paths; each component's edges swap
/// matchings with probability 1/2. Every move preserves the factorization
/// invariants exactly.
pub fn kempe_mix(ms: &mut [Matching], rng: &mut SimRng, steps: usize) {
    let k = ms.len();
    if k < 2 {
        return;
    }
    let n = ms[0].len();
    let mut visited = vec![false; n];
    let mut component = Vec::with_capacity(n);
    for _ in 0..steps {
        let i = rng.index(k);
        let mut j = rng.index(k - 1);
        if j >= i {
            j += 1;
        }
        // Split borrows of the two matchings.
        let (a, b) = if i < j {
            let (lo, hi) = ms.split_at_mut(j);
            (&mut lo[i].pair, &mut hi[0].pair)
        } else {
            let (lo, hi) = ms.split_at_mut(i);
            (&mut hi[0].pair, &mut lo[j].pair)
        };
        visited.iter_mut().for_each(|v| *v = false);
        for start in 0..n {
            if visited[start] {
                continue;
            }
            // Walk the union component containing `start`, alternating
            // matchings; collect its vertices.
            component.clear();
            let mut frontier = vec![start];
            visited[start] = true;
            while let Some(v) = frontier.pop() {
                component.push(v);
                for w in [a[v], b[v]] {
                    if !visited[w] {
                        visited[w] = true;
                        frontier.push(w);
                    }
                }
            }
            if component.len() > 1 && rng.chance(0.5) {
                for &v in &component {
                    std::mem::swap(&mut a[v], &mut b[v]);
                }
            }
        }
    }
}

/// The canonical (deterministic) round-robin factorization.
pub fn canonical_factorization(n: usize) -> Vec<Matching> {
    if n == 1 {
        return vec![Matching::identity(1)];
    }
    if n % 2 == 1 {
        odd_rounds(n)
    } else {
        let mut rounds = even_rounds(n);
        rounds.push(Matching::identity(n));
        rounds
    }
}

/// Odd `n`: round `r` pairs `i` with `j` when `i + j ≡ r (mod n)`; the rack
/// with `2i ≡ r (mod n)` sits out (self-paired). `n` rounds.
fn odd_rounds(n: usize) -> Vec<Matching> {
    (0..n)
        .map(|r| {
            let mut pair: Vec<NodeId> = vec![0; n];
            for (i, p) in pair.iter_mut().enumerate() {
                *p = (r + n - i % n) % n;
            }
            Matching::new(pair)
        })
        .collect()
}

/// Even `n`: classic circle method. Fix rack `n-1`; rotate the other `n-1`
/// racks. `n-1` perfect-matching rounds.
fn even_rounds(n: usize) -> Vec<Matching> {
    let m = n - 1; // rotating racks 0..m, hub is rack m
    (0..m)
        .map(|r| {
            let mut pair: Vec<NodeId> = (0..n).collect();
            // Hub pairs with r.
            pair[m] = r;
            pair[r] = m;
            // Remaining: i + j ≡ 2r (mod m).
            for (i, p) in pair.iter_mut().enumerate().take(m) {
                if i == r {
                    continue;
                }
                *p = (2 * r + m - i % m) % m;
            }
            Matching::new(pair)
        })
        .collect()
}

/// Validate that `ms` is a complete factorization of the all-ones matrix on
/// `n` racks: returns `Err` with a description of the first violation.
pub fn validate_factorization(ms: &[Matching], n: usize) -> Result<(), String> {
    if ms.len() != n {
        return Err(format!("expected {n} matchings, got {}", ms.len()));
    }
    // seen[a][b] for a <= b, flattened.
    let mut seen = vec![false; n * n];
    for (mi, m) in ms.iter().enumerate() {
        if m.len() != n {
            return Err(format!("matching {mi} covers {} racks", m.len()));
        }
        for a in 0..n {
            let b = m.partner(a);
            if a <= b {
                let idx = a * n + b;
                if seen[idx] {
                    return Err(format!("pair ({a},{b}) duplicated in matching {mi}"));
                }
                seen[idx] = true;
            }
        }
    }
    for a in 0..n {
        for b in a..n {
            if !seen[a * n + b] {
                return Err(format!("pair ({a},{b}) never matched"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_factorization_complete() {
        for n in [3usize, 5, 7, 9, 27, 109] {
            let ms = canonical_factorization(n);
            validate_factorization(&ms, n).unwrap();
            // each matching leaves exactly one rack self-paired
            for m in &ms {
                let selfs = (0..n).filter(|&i| !m.is_matched(i)).count();
                assert_eq!(selfs, 1, "n={n}");
                assert_eq!(m.circuit_count(), (n - 1) / 2);
            }
        }
    }

    #[test]
    fn even_factorization_complete() {
        for n in [2usize, 4, 6, 8, 108, 130] {
            let ms = canonical_factorization(n);
            validate_factorization(&ms, n).unwrap();
            // n-1 perfect matchings + identity
            let identities = ms
                .iter()
                .filter(|m| (0..n).all(|i| !m.is_matched(i)))
                .count();
            assert_eq!(identities, 1);
            let perfect = ms
                .iter()
                .filter(|m| (0..n).all(|i| m.is_matched(i)))
                .count();
            assert_eq!(perfect, n - 1);
        }
    }

    #[test]
    fn random_factorization_valid() {
        let mut rng = SimRng::new(1234);
        for n in [6usize, 15, 108] {
            let ms = factorize_complete(n, &mut rng);
            validate_factorization(&ms, n).unwrap();
        }
    }

    #[test]
    fn random_factorizations_differ_by_seed() {
        let a = factorize_complete(20, &mut SimRng::new(1));
        let b = factorize_complete(20, &mut SimRng::new(2));
        assert_ne!(a, b);
        let c = factorize_complete(20, &mut SimRng::new(1));
        assert_eq!(a, c, "same seed reproduces");
    }

    #[test]
    fn relabel_preserves_structure() {
        let m = canonical_factorization(8).remove(0);
        let perm: Vec<usize> = vec![3, 1, 4, 0, 6, 7, 2, 5];
        let r = m.relabel(&perm);
        assert_eq!(r.circuit_count(), m.circuit_count());
        // pair (a,b) in m must map to (perm[a], perm[b]) in r
        for (a, b) in m.pairs() {
            assert_eq!(r.partner(perm[a]), perm[b]);
        }
    }

    #[test]
    fn single_rack() {
        let ms = canonical_factorization(1);
        assert_eq!(ms.len(), 1);
        assert!(!ms[0].is_matched(0));
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_rejected() {
        Matching::new(vec![1, 2, 0]);
    }

    #[test]
    fn add_to_graph_ports() {
        let ms = canonical_factorization(6);
        let mut g = Graph::new(6);
        ms[0].add_to_graph(&mut g, 7);
        assert_eq!(g.edge_count(), 6); // 3 circuits, both directions
        assert!(g.edges(0).iter().all(|e| e.port == 7));
    }

    #[test]
    fn validate_catches_duplicate() {
        let n = 4;
        let ms = vec![
            Matching::identity(n),
            Matching::identity(n),
            canonical_factorization(n)[0].clone(),
            canonical_factorization(n)[1].clone(),
        ];
        assert!(validate_factorization(&ms, n).is_err());
    }
}
