//! Failure injection and analysis (§5.5, Figures 11, 18–20, Appendix E).
//!
//! The paper injects random link, ToR, and circuit-switch failures, then
//! steps through the topology slices recording (1) the fraction of ToR
//! pairs disconnected in the *worst* slice, (2) the fraction of unique ToR
//! pairs disconnected *across all* slices (integrated connectivity), and
//! (3) average / worst-case path length among still-connected pairs.

use crate::clos::ClosTopology;
use crate::graph::{Graph, NodeId};
use crate::opera::OperaTopology;
use simkit::SimRng;

/// A set of failed components.
#[derive(Debug, Clone, Default)]
pub struct FailureSet {
    /// Failed ToRs (racks).
    pub tors: Vec<NodeId>,
    /// Failed circuit switches (Opera/RotorNet) or packet switches
    /// (Clos/expander aggregate+core) by index.
    pub switches: Vec<usize>,
    /// Failed individual links as `(rack, circuit switch)` for Opera or
    /// `(node a, node b)` for static graphs.
    pub links: Vec<(NodeId, usize)>,
}

impl FailureSet {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sample a failure set: each category's `count` entries drawn
    /// uniformly without replacement.
    pub fn sample(
        rng: &mut SimRng,
        tor_count: usize,
        tors: usize,
        switch_count: usize,
        switches: usize,
        link_count: usize,
        link_domain: &[(NodeId, usize)],
    ) -> Self {
        fn pick(rng: &mut SimRng, n: usize, k: usize) -> Vec<usize> {
            let mut all: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut all);
            all.truncate(k.min(n));
            all
        }
        let links = {
            let mut idx = pick(rng, link_domain.len(), link_count);
            idx.sort_unstable();
            idx.into_iter().map(|i| link_domain[i]).collect()
        };
        FailureSet {
            tors: pick(rng, tors, tor_count),
            switches: pick(rng, switches, switch_count),
            links,
        }
    }
}

/// Per-slice and integrated connectivity/stretch results.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Fraction of (non-failed) ordered ToR pairs disconnected in the worst
    /// slice.
    pub worst_slice_loss: f64,
    /// Fraction of unique ToR pairs disconnected in *every* slice
    /// (integrated across the cycle).
    pub all_slices_loss: f64,
    /// Mean path length over connected pairs, averaged over slices.
    pub avg_path_len: f64,
    /// Maximum finite path length over all slices.
    pub max_path_len: usize,
}

/// Remove failed components from an Opera slice graph.
fn apply_failures_opera(g: &Graph, fails: &FailureSet, racks: usize) -> Graph {
    let mut failed_tor = vec![false; racks];
    for &t in &fails.tors {
        failed_tor[t] = true;
    }
    let mut out = Graph::new(racks);
    for v in 0..racks {
        if failed_tor[v] {
            continue;
        }
        for e in g.edges(v) {
            if failed_tor[e.to] || fails.switches.contains(&e.port) {
                continue;
            }
            // Link failure (rack, switch) kills the circuit touching that
            // rack's uplink to that switch — both directions.
            if fails.links.contains(&(v, e.port)) || fails.links.contains(&(e.to, e.port)) {
                continue;
            }
            out.add_edge(v, e.to, e.port);
        }
    }
    out
}

/// Analyze an Opera topology under failures: step through every slice of
/// the cycle, recording connectivity and path lengths among surviving ToRs.
pub fn analyze_opera(topo: &OperaTopology, fails: &FailureSet) -> FailureReport {
    let racks = topo.racks();
    let alive: Vec<NodeId> = (0..racks).filter(|r| !fails.tors.contains(r)).collect();
    let alive_pairs = alive.len() * alive.len().saturating_sub(1);

    let mut ever_connected = vec![false; racks * racks];
    let mut worst_loss: f64 = 0.0;
    let mut path_sum = 0.0;
    let mut path_slices = 0usize;
    let mut max_len = 0usize;

    for s in 0..topo.slices_per_cycle() {
        let g = apply_failures_opera(&topo.slice(s).graph(), fails, racks);
        let mut slice_connected = 0usize;
        let mut slice_sum = 0usize;
        for &src in &alive {
            let dist = g.bfs_distances(src);
            for &dst in &alive {
                if src == dst {
                    continue;
                }
                let d = dist[dst];
                if d != usize::MAX {
                    slice_connected += 1;
                    slice_sum += d;
                    max_len = max_len.max(d);
                    ever_connected[src * racks + dst] = true;
                }
            }
        }
        let loss = if alive_pairs == 0 {
            0.0
        } else {
            1.0 - slice_connected as f64 / alive_pairs as f64
        };
        worst_loss = worst_loss.max(loss);
        if slice_connected > 0 {
            path_sum += slice_sum as f64 / slice_connected as f64;
            path_slices += 1;
        }
    }

    let ever = alive
        .iter()
        .flat_map(|&a| alive.iter().map(move |&b| (a, b)))
        .filter(|&(a, b)| a != b && ever_connected[a * racks + b])
        .count();
    FailureReport {
        worst_slice_loss: worst_loss,
        all_slices_loss: if alive_pairs == 0 {
            0.0
        } else {
            1.0 - ever as f64 / alive_pairs as f64
        },
        avg_path_len: if path_slices == 0 {
            0.0
        } else {
            path_sum / path_slices as f64
        },
        max_path_len: max_len,
    }
}

/// Analyze a *static* topology (expander or Clos switch graph) under
/// failures. `tor_ids` are the nodes whose pairwise connectivity counts;
/// `switch` failures remove whole nodes by id; `links` are `(a, b)` node
/// pairs.
pub fn analyze_static(graph: &Graph, tor_ids: &[NodeId], fails: &FailureSet) -> FailureReport {
    let n = graph.len();
    let mut dead = vec![false; n];
    for &t in &fails.tors {
        dead[t] = true;
    }
    for &s in &fails.switches {
        dead[s] = true;
    }
    let mut g = Graph::new(n);
    for v in 0..n {
        if dead[v] {
            continue;
        }
        for e in graph.edges(v) {
            if dead[e.to] {
                continue;
            }
            let killed = fails
                .links
                .iter()
                .any(|&(a, b)| (a == v && b == e.to) || (a == e.to && b == v));
            if !killed {
                g.add_edge(v, e.to, e.port);
            }
        }
    }
    let alive: Vec<NodeId> = tor_ids.iter().copied().filter(|&t| !dead[t]).collect();
    let alive_pairs = alive.len() * alive.len().saturating_sub(1);
    let mut connected = 0usize;
    let mut sum = 0usize;
    let mut max_len = 0usize;
    for &src in &alive {
        let dist = g.bfs_distances(src);
        for &dst in &alive {
            if src == dst {
                continue;
            }
            if dist[dst] != usize::MAX {
                connected += 1;
                sum += dist[dst];
                max_len = max_len.max(dist[dst]);
            }
        }
    }
    FailureReport {
        worst_slice_loss: if alive_pairs == 0 {
            0.0
        } else {
            1.0 - connected as f64 / alive_pairs as f64
        },
        all_slices_loss: if alive_pairs == 0 {
            0.0
        } else {
            1.0 - connected as f64 / alive_pairs as f64
        },
        avg_path_len: if connected == 0 {
            0.0
        } else {
            sum as f64 / connected as f64
        },
        max_path_len: max_len,
    }
}

/// All `(rack, switch)` uplink-link identifiers of an Opera topology, the
/// sampling domain for link failures.
pub fn opera_link_domain(topo: &OperaTopology) -> Vec<(NodeId, usize)> {
    let mut v = Vec::with_capacity(topo.racks() * topo.switches());
    for r in 0..topo.racks() {
        for s in 0..topo.switches() {
            v.push((r, s));
        }
    }
    v
}

/// All switch-to-switch links of a Clos as `(a, b)` pairs (deduplicated).
pub fn clos_link_domain(clos: &ClosTopology) -> Vec<(NodeId, usize)> {
    let g = clos.graph();
    let mut v = Vec::new();
    for a in 0..g.len() {
        for e in g.edges(a) {
            if a < e.to {
                v.push((a, e.to));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opera::OperaParams;

    fn topo() -> OperaTopology {
        OperaTopology::generate(
            OperaParams {
                racks: 24,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            5,
        )
    }

    #[test]
    fn no_failures_full_connectivity() {
        let t = topo();
        let r = analyze_opera(&t, &FailureSet::none());
        assert_eq!(r.worst_slice_loss, 0.0);
        assert_eq!(r.all_slices_loss, 0.0);
        assert!(r.avg_path_len > 1.0 && r.avg_path_len < 4.0);
    }

    #[test]
    fn single_link_failure_tolerated() {
        let t = topo();
        let fails = FailureSet {
            links: vec![(0, 1)],
            ..Default::default()
        };
        let r = analyze_opera(&t, &fails);
        assert_eq!(
            r.all_slices_loss, 0.0,
            "one link must not partition any pair across the cycle"
        );
    }

    #[test]
    fn one_circuit_switch_failure_tolerated() {
        let t = topo();
        let fails = FailureSet {
            switches: vec![2],
            ..Default::default()
        };
        let r = analyze_opera(&t, &fails);
        // u=4: losing 1 switch leaves >=2 active matchings per slice;
        // integrated connectivity should survive.
        assert_eq!(r.all_slices_loss, 0.0);
    }

    #[test]
    fn all_switches_failed_disconnects_everything() {
        let t = topo();
        let fails = FailureSet {
            switches: vec![0, 1, 2, 3],
            ..Default::default()
        };
        let r = analyze_opera(&t, &fails);
        assert_eq!(r.worst_slice_loss, 1.0);
        assert_eq!(r.all_slices_loss, 1.0);
    }

    #[test]
    fn failed_tor_excluded_from_pairs() {
        let t = topo();
        let fails = FailureSet {
            tors: vec![0, 1],
            ..Default::default()
        };
        let r = analyze_opera(&t, &fails);
        // Non-failed ToRs should remain fully connected.
        assert_eq!(r.all_slices_loss, 0.0);
    }

    #[test]
    fn failures_increase_path_length() {
        let t = topo();
        let base = analyze_opera(&t, &FailureSet::none());
        let mut rng = SimRng::new(3);
        let domain = opera_link_domain(&t);
        let fails = FailureSet::sample(&mut rng, 0, t.racks(), 0, t.switches(), 20, &domain);
        let r = analyze_opera(&t, &fails);
        assert!(
            r.avg_path_len >= base.avg_path_len,
            "{} < {}",
            r.avg_path_len,
            base.avg_path_len
        );
    }

    #[test]
    fn static_analysis_on_clos() {
        use crate::clos::{ClosParams, ClosTopology};
        let c = ClosTopology::generate(ClosParams::example_648());
        let tors: Vec<usize> = (0..c.tors()).collect();
        let base = analyze_static(c.graph(), &tors, &FailureSet::none());
        assert_eq!(base.worst_slice_loss, 0.0);
        assert!(base.avg_path_len > 3.0 && base.avg_path_len < 4.1);

        // Kill all aggs of pod 0 -> its ToRs are isolated.
        let aggs: Vec<usize> = (c.tors()..c.tors() + c.aggs_per_pod()).collect();
        let fails = FailureSet {
            switches: aggs,
            ..Default::default()
        };
        let r = analyze_static(c.graph(), &tors, &fails);
        assert!(r.worst_slice_loss > 0.0);
    }

    #[test]
    fn sample_respects_counts() {
        let t = topo();
        let mut rng = SimRng::new(8);
        let domain = opera_link_domain(&t);
        let f = FailureSet::sample(&mut rng, 3, t.racks(), 1, t.switches(), 5, &domain);
        assert_eq!(f.tors.len(), 3);
        assert_eq!(f.switches.len(), 1);
        assert_eq!(f.links.len(), 5);
        // distinct
        let mut l = f.links.clone();
        l.dedup();
        assert_eq!(l.len(), 5);
    }
}
