//! Over-subscribed three-tier folded-Clos baselines (§2.3, Appendix A).
//!
//! The paper's cost-normalized Clos keeps the switch radix `k` and host
//! count fixed and over-subscribes only at the ToR tier: a ToR has
//! `d = k·F/(F+1)` host-facing ports and `u = k/(F+1)` uplinks, giving an
//! `F:1` network. Host count follows `H = (4F/(F+1))·(k/2)³` (Appendix A
//! with `T = 3` tiers).
//!
//! Structure generated here (for `F = 3`-style configs):
//! * a pod contains `k/2` ToRs and `u` aggregation switches; each ToR
//!   connects once to each agg;
//! * each agg uses `k/2` down-ports and `k/2` up-ports;
//! * there are `k` pods and `u·(k/2)·k/k = u·k/2` core switches; each core
//!   switch has one link per pod.
//!
//! The generated object is a switch-level [`Graph`] plus role metadata, so
//! path-length, failure, and flow-level analyses can treat it uniformly
//! with the rack-level topologies (ToR-to-ToR hop counts are graph hops).

use crate::graph::{Graph, NodeId};

/// Roles of switches in the folded Clos.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosRole {
    /// Top-of-rack switch (hosts attach here).
    Tor,
    /// Pod aggregation switch.
    Agg,
    /// Core (spine) switch.
    Core,
}

/// Parameters for an over-subscribed folded Clos.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosParams {
    /// Switch radix `k` (even).
    pub radix: usize,
    /// Over-subscription factor `F` (e.g. 3 for 3:1). `F+1` must divide `k`.
    pub oversubscription: usize,
}

impl ClosParams {
    /// The paper's `k = 12`, 3:1, 648-host Clos.
    pub fn example_648() -> Self {
        ClosParams {
            radix: 12,
            oversubscription: 3,
        }
    }

    /// ToR uplink count `u = k/(F+1)`.
    pub fn tor_uplinks(&self) -> usize {
        self.radix / (self.oversubscription + 1)
    }

    /// Hosts per ToR `d = k·F/(F+1)`.
    pub fn hosts_per_tor(&self) -> usize {
        self.radix - self.tor_uplinks()
    }

    /// Total hosts `H = (4F/(F+1))(k/2)³`.
    pub fn hosts(&self) -> usize {
        let f = self.oversubscription;
        4 * f * (self.radix / 2).pow(3) / (f + 1)
    }
}

/// A generated folded-Clos topology.
#[derive(Debug, Clone)]
pub struct ClosTopology {
    params: ClosParams,
    graph: Graph,
    roles: Vec<ClosRole>,
    tors: usize,
    aggs: usize,
    cores: usize,
    tors_per_pod: usize,
    aggs_per_pod: usize,
}

impl ClosTopology {
    /// Build the Clos. Node ids: ToRs `[0, tors)`, aggs `[tors,
    /// tors+aggs)`, cores after that. Edge `port` labels index a switch's
    /// relevant port group (uplink number at the lower tier).
    ///
    /// # Panics
    /// Panics if the parameters do not define a consistent 3-tier Clos
    /// (`(F+1) | k` and `k` even).
    pub fn generate(params: ClosParams) -> Self {
        let k = params.radix;
        let f = params.oversubscription;
        assert!(k.is_multiple_of(2), "radix must be even");
        assert!(k.is_multiple_of(f + 1), "(F+1) must divide k");

        let u = params.tor_uplinks(); // ToR uplinks = aggs per pod
        let tors_per_pod = k / 2; // agg down-ports
        let pods = k;
        let tors = tors_per_pod * pods;
        let aggs_per_pod = u;
        let aggs = aggs_per_pod * pods;
        // Each agg has k - tors_per_pod = k/2 uplinks; total agg uplinks
        // = pods * u * k/2; each core takes one link per pod.
        let cores = aggs_per_pod * (k - tors_per_pod);
        assert_eq!(
            params.hosts(),
            tors * params.hosts_per_tor(),
            "host formula consistent with structure"
        );

        let n = tors + aggs + cores;
        let mut graph = Graph::new(n);
        let mut roles = vec![ClosRole::Tor; n];
        for r in roles.iter_mut().take(tors + aggs).skip(tors) {
            *r = ClosRole::Agg;
        }
        for r in roles.iter_mut().skip(tors + aggs) {
            *r = ClosRole::Core;
        }

        // ToR <-> Agg within each pod.
        for pod in 0..pods {
            for t in 0..tors_per_pod {
                let tor = pod * tors_per_pod + t;
                for a in 0..aggs_per_pod {
                    let agg = tors + pod * aggs_per_pod + a;
                    graph.add_link(tor, agg, a);
                }
            }
        }
        // Agg <-> Core: agg `a` of each pod connects to cores
        // [a*(k/2), (a+1)*(k/2)); each such core gets exactly one link from
        // every pod.
        let agg_up = k - tors_per_pod;
        for pod in 0..pods {
            for a in 0..aggs_per_pod {
                let agg = tors + pod * aggs_per_pod + a;
                for up in 0..agg_up {
                    let core = tors + aggs + a * agg_up + up;
                    graph.add_link(agg, core, up);
                }
            }
        }

        ClosTopology {
            params,
            graph,
            roles,
            tors,
            aggs,
            cores,
            tors_per_pod,
            aggs_per_pod,
        }
    }

    /// Parameters.
    pub fn params(&self) -> &ClosParams {
        &self.params
    }
    /// Switch-level graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
    /// Role of a node.
    pub fn role(&self, node: NodeId) -> ClosRole {
        self.roles[node]
    }
    /// Number of ToRs.
    pub fn tors(&self) -> usize {
        self.tors
    }
    /// Number of aggregation switches.
    pub fn aggs(&self) -> usize {
        self.aggs
    }
    /// Number of core switches.
    pub fn cores(&self) -> usize {
        self.cores
    }
    /// ToRs per pod.
    pub fn tors_per_pod(&self) -> usize {
        self.tors_per_pod
    }
    /// Aggs per pod.
    pub fn aggs_per_pod(&self) -> usize {
        self.aggs_per_pod
    }
    /// Pod of a ToR.
    pub fn pod_of_tor(&self, tor: NodeId) -> usize {
        assert!(tor < self.tors);
        tor / self.tors_per_pod
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_648_shape() {
        let t = ClosTopology::generate(ClosParams::example_648());
        assert_eq!(t.params().hosts(), 648);
        assert_eq!(t.params().hosts_per_tor(), 9);
        assert_eq!(t.params().tor_uplinks(), 3);
        assert_eq!(t.tors(), 72);
        assert_eq!(t.aggs(), 36);
        assert_eq!(t.cores(), 18);
        assert!(t.graph().is_connected());
    }

    #[test]
    fn port_counts_within_radix() {
        let t = ClosTopology::generate(ClosParams::example_648());
        let k = t.params().radix;
        for n in 0..t.graph().len() {
            let deg = t.graph().degree(n);
            let host_ports = match t.role(n) {
                ClosRole::Tor => t.params().hosts_per_tor(),
                _ => 0,
            };
            assert!(
                deg + host_ports <= k,
                "node {n} uses {deg}+{host_ports} of {k} ports"
            );
        }
    }

    #[test]
    fn tor_to_tor_hop_distribution() {
        let t = ClosTopology::generate(ClosParams::example_648());
        // same pod: 2 hops (ToR-Agg-ToR); cross pod: 4 hops.
        let d = t.graph().bfs_distances(0);
        for (tor, &dist) in d.iter().enumerate().take(t.tors()).skip(1) {
            let expect = if t.pod_of_tor(tor) == 0 { 2 } else { 4 };
            assert_eq!(dist, expect, "tor {tor}");
        }
    }

    #[test]
    fn k24_consistency() {
        let t = ClosTopology::generate(ClosParams {
            radix: 24,
            oversubscription: 3,
        });
        assert_eq!(t.params().hosts(), 5184);
        assert!(t.graph().is_connected());
    }

    #[test]
    fn core_reaches_every_pod() {
        let t = ClosTopology::generate(ClosParams::example_648());
        let first_core = t.tors() + t.aggs();
        for c in first_core..first_core + t.cores() {
            let mut pods: Vec<usize> = t
                .graph()
                .edges(c)
                .iter()
                .map(|e| (e.to - t.tors()) / t.aggs_per_pod())
                .collect();
            pods.sort_unstable();
            pods.dedup();
            assert_eq!(pods.len(), t.params().radix, "core {c} misses a pod");
        }
    }

    #[test]
    #[should_panic(expected = "divide k")]
    fn inconsistent_params_rejected() {
        ClosTopology::generate(ClosParams {
            radix: 12,
            oversubscription: 4,
        });
    }
}
