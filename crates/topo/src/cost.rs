//! Cost normalization (Appendix A, Table 2, Figures 12/15).
//!
//! `α` is the cost of an Opera "port" (ToR port + transceiver + fiber +
//! circuit-switch port) divided by the cost of a static-network "port" (ToR
//! port + transceiver + fiber). Equivalently, α is the core-port cost per
//! edge (server-facing) port:
//!
//! * folded Clos (T tiers, oversubscription F): `α = 2(T−1)/F`,
//! * static expander (u uplinks, radix k): `α = u/(k−u)`.
//!
//! Holding switch radix `k` and host count `H` constant, a cost-equivalent
//! Clos satisfies `F = 2(T−1)/α` and `H = (4F/(F+1))(k/2)³` (T = 3).
//! Table 2's component prices give α ≈ 1.3 for Opera.

/// Component cost breakdown per "port" (Table 2, US dollars).
#[derive(Debug, Clone, Copy)]
pub struct PortCost {
    /// Short-reach optical transceiver.
    pub transceiver: f64,
    /// 150 m of optical fiber at $0.3/m.
    pub fiber: f64,
    /// Packet-switch (ToR) port.
    pub tor_port: f64,
    /// Rotor-switch optics amortized per duplex port (fiber array, lenses,
    /// beam-steering element, optical mapping) — zero for static networks.
    pub rotor_components: f64,
}

impl PortCost {
    /// Static-network port (Table 2 left column): $215.
    pub fn static_port() -> Self {
        PortCost {
            transceiver: 80.0,
            fiber: 45.0,
            tor_port: 90.0,
            rotor_components: 0.0,
        }
    }

    /// Opera port (Table 2 right column): $275 assuming 512-port rotor
    /// switches ($30 fiber array + $15 lenses + $5 beam steering + $10
    /// mapping per duplex port).
    pub fn opera_port() -> Self {
        PortCost {
            transceiver: 80.0,
            fiber: 45.0,
            tor_port: 90.0,
            rotor_components: 30.0 + 15.0 + 5.0 + 10.0,
        }
    }

    /// Total cost of this port.
    pub fn total(&self) -> f64 {
        self.transceiver + self.fiber + self.tor_port + self.rotor_components
    }
}

/// Table 2's α: Opera port cost over static port cost (≈ 1.279).
pub fn table2_alpha() -> f64 {
    PortCost::opera_port().total() / PortCost::static_port().total()
}

/// Clos oversubscription factor for a given α with `tiers` tiers:
/// `F = 2(T−1)/α`.
pub fn clos_oversubscription(alpha: f64, tiers: usize) -> f64 {
    2.0 * (tiers as f64 - 1.0) / alpha
}

/// Host count of a cost-equivalent 3-tier folded Clos:
/// `H = (4F/(F+1))(k/2)³` with `F = 4/α`.
pub fn clos_hosts(alpha: f64, k: usize) -> f64 {
    let f = clos_oversubscription(alpha, 3);
    4.0 * f / (f + 1.0) * ((k as f64) / 2.0).powi(3)
}

/// Expander α for `u` uplinks of a radix-`k` ToR: `α = u/(k−u)`.
pub fn expander_alpha(u: usize, k: usize) -> f64 {
    assert!(u < k);
    u as f64 / (k - u) as f64
}

/// Largest expander uplink count `u` affordable at cost α on radix `k`:
/// `u = ⌊α·k/(1+α)⌋` (tolerating float round-off at exact integers).
pub fn expander_uplinks(alpha: f64, k: usize) -> usize {
    ((alpha * k as f64) / (1.0 + alpha) + 1e-9).floor() as usize
}

/// Number of expander racks needed to host `hosts` hosts when each rack
/// has `k − u` host ports (rounded up to even for perfect matchings).
pub fn expander_racks(hosts: usize, k: usize, u: usize) -> usize {
    let d = k - u;
    let racks = hosts.div_ceil(d);
    racks + racks % 2
}

/// Opera α fixed at 1: the paper's Opera always uses `u = d = k/2`; the α
/// sweep instead *rebates* the static networks. For an Opera port priced at
/// α, cost-equivalent static networks get `α` worth of core per edge port.
///
/// Returns `(clos_F, expander_u)` for a sweep point.
pub fn cost_equivalent_configs(alpha: f64, k: usize) -> (f64, usize) {
    (clos_oversubscription(alpha, 3), expander_uplinks(alpha, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals() {
        assert_eq!(PortCost::static_port().total(), 215.0);
        assert_eq!(PortCost::opera_port().total(), 275.0);
        let a = table2_alpha();
        assert!((a - 1.279).abs() < 0.01, "α = {a}");
    }

    #[test]
    fn clos_alpha_roundtrip() {
        // 3-tier, F = 3 -> α = 4/3.
        let f = clos_oversubscription(4.0 / 3.0, 3);
        assert!((f - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clos_hosts_648() {
        // α = 4/3 (F=3), k=12 -> 648 hosts.
        let h = clos_hosts(4.0 / 3.0, 12);
        assert!((h - 648.0).abs() < 1e-9);
    }

    #[test]
    fn expander_u7_alpha() {
        // u=7, k=12 -> α = 7/5 = 1.4, close to Opera's 1.3.
        assert!((expander_alpha(7, 12) - 1.4).abs() < 1e-12);
        assert_eq!(expander_uplinks(1.4, 12), 7);
        // At α = 1.3 you can afford u = 6.78 -> 6... paper rounds the
        // comparison up to u = 7 ("similar cost").
        assert_eq!(expander_uplinks(1.3, 12), 6);
    }

    #[test]
    fn expander_racks_650() {
        assert_eq!(expander_racks(648, 12, 7), 130); // 130*5 = 650 hosts
    }

    #[test]
    fn sweep_monotone() {
        // Richer static networks (higher α rebate) mean lower F and more
        // uplinks.
        let (f1, u1) = cost_equivalent_configs(1.0, 24);
        let (f2, u2) = cost_equivalent_configs(2.0, 24);
        assert!(f2 < f1);
        assert!(u2 >= u1);
    }
}
