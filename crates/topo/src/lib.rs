//! `topo` — topology generation and graph analysis for the Opera reproduction.
//!
//! This crate builds every network topology the paper evaluates and provides
//! the graph machinery the evaluation rests on:
//!
//! * [`graph`] — rack-level multigraphs, BFS shortest paths, ECMP next-hop
//!   tables, diameter / average path length,
//! * [`matching`] — perfect/near-perfect matchings and the round-robin
//!   factorization of the complete graph into `N` disjoint matchings (§3.3),
//! * [`lifting`] — graph lifting to build large factorizations from small
//!   ones (§3.3),
//! * [`opera`] — the Opera topology itself: matching→circuit-switch
//!   assignment, cyclic orders, offset reconfiguration, topology slices
//!   (§3.1–3.3, Appendix B grouping),
//! * [`expander`] — cost-equivalent static expander baselines (u random
//!   matchings),
//! * [`clos`] — M:1 over-subscribed three-tier folded-Clos baselines,
//! * [`rotornet`] — RotorNet schedules (non-hybrid and hybrid),
//! * [`spectral`] — spectral-gap computation (Appendix D),
//! * [`failures`] — link/ToR/circuit-switch failure injection and
//!   connectivity/stretch analysis (§5.5, Appendix E),
//! * [`cost`] — the cost-normalization model and α sweep (Appendix A).
//!
//! # Example
//!
//! ```
//! use topo::opera::{OperaParams, OperaTopology};
//!
//! // The paper's 648-host topology: every slice is a connected expander
//! // and every rack pair gets direct circuits each cycle.
//! let t = OperaTopology::generate(OperaParams::example_648(), 1);
//! assert_eq!(t.slices_per_cycle(), 108);
//! assert!(t.slice(0).graph().is_connected());
//! assert!(!t.direct_slices(0, 77).is_empty());
//! ```

pub mod clos;
pub mod cost;
pub mod expander;
pub mod failures;
pub mod graph;
pub mod lifting;
pub mod matching;
pub mod opera;
pub mod rotornet;
pub mod spectral;
pub use graph::{Graph, NodeId};
pub use matching::{factorize_complete, Matching};
pub use opera::{OperaParams, OperaTopology, SliceView};
