//! RotorNet baselines (§5, reference \[34\]).
//!
//! RotorNet uses the same rotor circuit switches as Opera, cyclically
//! stepping through matchings, but does *not* arrange them into expanders
//! and does not forward traffic over multi-hop circuit paths: all traffic
//! uses RotorLB (direct one-hop, plus two-hop Valiant load balancing for
//! skew). Low-latency traffic therefore either waits for circuits
//! (non-hybrid RotorNet — three orders of magnitude slower for short flows,
//! Figure 7c) or uses a separate packet-switched network (hybrid RotorNet,
//! +33% cost: one of the six ToR uplinks faces a packet core).
//!
//! Structurally we reuse the Opera schedule generator — the circuit plane
//! is identical hardware cycling through a complete set of matchings — and
//! record how many uplinks face rotor switches vs. a packet core.

use crate::opera::{OperaParams, OperaTopology};

/// RotorNet flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotorNetKind {
    /// All ToR uplinks face rotor switches; no packet-switched core.
    NonHybrid,
    /// One uplink per ToR faces a multi-stage packet-switched core used for
    /// low-latency traffic (1.33× the cost of the all-optical networks).
    Hybrid,
}

/// A RotorNet topology: a rotor-switch schedule plus the hybrid flag.
#[derive(Debug, Clone)]
pub struct RotorNetTopology {
    kind: RotorNetKind,
    /// Schedule of the rotor plane (expander property unused).
    schedule: OperaTopology,
    /// Uplinks facing the packet core (0 or 1 per ToR).
    packet_uplinks: usize,
}

impl RotorNetTopology {
    /// Generate a RotorNet. For the hybrid flavor, one uplink per ToR is
    /// diverted to the packet core, so the rotor plane runs with `u − 1`
    /// switches.
    ///
    /// # Panics
    /// As for [`OperaTopology::generate`]: the (possibly reduced) uplink
    /// count must divide the rack count.
    pub fn generate(params: OperaParams, kind: RotorNetKind, seed: u64) -> Self {
        let packet_uplinks = match kind {
            RotorNetKind::NonHybrid => 0,
            RotorNetKind::Hybrid => 1,
        };
        let rotor_params = OperaParams {
            uplinks: params.uplinks - packet_uplinks,
            ..params
        };
        RotorNetTopology {
            kind,
            schedule: OperaTopology::generate(rotor_params, seed),
            packet_uplinks,
        }
    }

    /// Hybrid or not.
    pub fn kind(&self) -> RotorNetKind {
        self.kind
    }

    /// The rotor-plane schedule (matchings, slices, direct circuits).
    pub fn schedule(&self) -> &OperaTopology {
        &self.schedule
    }

    /// Uplinks per ToR facing the packet-switched core.
    pub fn packet_uplinks(&self) -> usize {
        self.packet_uplinks
    }

    /// Rotor uplinks per ToR.
    pub fn rotor_uplinks(&self) -> usize {
        self.schedule.switches()
    }

    /// Relative cost vs. a cost-equivalent all-optical network: hybrid
    /// RotorNet keeps all `u` rotor-equivalent uplinks *and* adds a
    /// multi-stage packet core reachable through one uplink, which the
    /// paper prices at 4/3 of the non-hybrid network.
    pub fn relative_cost(&self) -> f64 {
        match self.kind {
            RotorNetKind::NonHybrid => 1.0,
            RotorNetKind::Hybrid => 4.0 / 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_hybrid_uses_all_uplinks() {
        let t = RotorNetTopology::generate(
            OperaParams {
                racks: 24,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            RotorNetKind::NonHybrid,
            1,
        );
        assert_eq!(t.rotor_uplinks(), 4);
        assert_eq!(t.packet_uplinks(), 0);
        assert!((t.relative_cost() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hybrid_diverts_one_uplink() {
        let t = RotorNetTopology::generate(
            OperaParams {
                racks: 24,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            RotorNetKind::Hybrid,
            1,
        );
        assert_eq!(t.rotor_uplinks(), 3);
        assert_eq!(t.packet_uplinks(), 1);
        assert!(t.relative_cost() > 1.3);
    }

    #[test]
    fn rotor_plane_still_covers_all_pairs() {
        let t = RotorNetTopology::generate(
            OperaParams {
                racks: 24,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            RotorNetKind::Hybrid,
            9,
        );
        let sched = t.schedule();
        for a in 0..sched.racks() {
            for b in (a + 1)..sched.racks() {
                assert!(!sched.direct_slices(a, b).is_empty());
            }
        }
    }
}
