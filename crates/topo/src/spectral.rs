//! Spectral-gap analysis (Appendix D, Figure 17).
//!
//! For a `d`-regular graph with adjacency eigenvalues
//! `d = λ₁ ≥ λ₂ ≥ … ≥ λₙ`, the *spectral gap* is `d − λ₂`; larger gaps mean
//! better expansion (Ramanujan graphs achieve `λ₂ ≤ 2√(d−1)`) [Alon 1986,
//! Hoory–Linial–Wigderson 2006].
//!
//! Eigenvalues are computed by *shifted* power iteration: iterating
//! `B = A + cI` (with `c` = max degree) makes the spectrum non-negative, so
//! the iteration converges even on bipartite graphs where `λₙ = −λ₁` would
//! otherwise tie the unshifted iteration. λ₂ (signed, second largest) is
//! found by deflating the top eigenvector.

use crate::graph::Graph;
use simkit::SimRng;

/// Result of a spectral analysis.
#[derive(Debug, Clone, Copy)]
pub struct Spectrum {
    /// Largest adjacency eigenvalue (= degree for regular graphs).
    pub lambda1: f64,
    /// Second-largest adjacency eigenvalue (signed).
    pub lambda2: f64,
}

impl Spectrum {
    /// The spectral gap `λ₁ − λ₂`.
    pub fn gap(&self) -> f64 {
        self.lambda1 - self.lambda2
    }

    /// The Ramanujan bound `2√(λ₁ − 1)` for comparison.
    pub fn ramanujan_bound(&self) -> f64 {
        2.0 * (self.lambda1 - 1.0).max(0.0).sqrt()
    }
}

/// `out = (A + shift·I) v`.
fn shifted_mat_vec(g: &Graph, shift: f64, v: &[f64], out: &mut [f64]) {
    for (o, x) in out.iter_mut().zip(v) {
        *o = shift * x;
    }
    for (i, &vi) in v.iter().enumerate() {
        for e in g.edges(i) {
            out[e.to] += vi;
        }
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
    norm
}

fn project_out(v: &mut [f64], dir: &[f64]) {
    let dot: f64 = v.iter().zip(dir).map(|(a, b)| a * b).sum();
    v.iter_mut().zip(dir).for_each(|(a, b)| *a -= dot * b);
}

/// Compute `λ₁` and `λ₂` (signed) of the adjacency matrix by shifted power
/// iteration with deflation. `iters` of 300–1000 gives ≈3 significant
/// digits on the graphs used here.
pub fn adjacency_spectrum(g: &Graph, iters: usize, seed: u64) -> Spectrum {
    let n = g.len();
    assert!(n >= 2, "spectrum needs at least two nodes");
    let shift = (0..n).map(|v| g.degree(v)).max().unwrap_or(0) as f64;
    let mut rng = SimRng::new(seed);
    let mut tmp = vec![0.0; n];

    // Top eigenvector of B = A + shift*I (eigenvalue λ1 + shift).
    let mut v1: Vec<f64> = (0..n).map(|_| rng.f64() + 0.1).collect();
    normalize(&mut v1);
    let mut mu1 = 0.0;
    for _ in 0..iters {
        shifted_mat_vec(g, shift, &v1, &mut tmp);
        mu1 = normalize(&mut tmp);
        std::mem::swap(&mut v1, &mut tmp);
    }

    // Second eigenvector of B, orthogonal to v1 (eigenvalue λ2 + shift).
    let mut v2: Vec<f64> = (0..n).map(|_| rng.f64() - 0.5).collect();
    project_out(&mut v2, &v1);
    normalize(&mut v2);
    let mut mu2 = 0.0;
    for _ in 0..iters {
        shifted_mat_vec(g, shift, &v2, &mut tmp);
        project_out(&mut tmp, &v1);
        mu2 = normalize(&mut tmp);
        if mu2 == 0.0 {
            break;
        }
        std::mem::swap(&mut v2, &mut tmp);
    }

    Spectrum {
        lambda1: mu1 - shift,
        lambda2: mu2 - shift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expander::{ExpanderParams, ExpanderTopology};

    fn complete_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_link(a, b, 0);
            }
        }
        g
    }

    fn cycle_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_link(i, (i + 1) % n, 0);
        }
        g
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n: λ1 = n-1, all others = -1.
        let g = complete_graph(10);
        let s = adjacency_spectrum(&g, 500, 1);
        assert!((s.lambda1 - 9.0).abs() < 1e-6, "λ1={}", s.lambda1);
        assert!((s.lambda2 - (-1.0)).abs() < 1e-3, "λ2={}", s.lambda2);
        assert!((s.gap() - 10.0).abs() < 1e-2);
    }

    #[test]
    fn cycle_graph_spectrum() {
        // C_n: λ1 = 2, λ2 = 2cos(2π/n) — signed second largest.
        for n in [11usize, 12] {
            let g = cycle_graph(n);
            let s = adjacency_spectrum(&g, 4000, 2);
            let expect = 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
            assert!((s.lambda1 - 2.0).abs() < 1e-3, "n={n} λ1={}", s.lambda1);
            assert!(
                (s.lambda2 - expect).abs() < 2e-2,
                "n={n} λ2={} expect {expect}",
                s.lambda2
            );
        }
    }

    #[test]
    fn bipartite_graph_converges() {
        // Even cycles are bipartite (λn = -2); the shifted iteration must
        // still find λ1 = 2 and λ2 = 2cos(2π/8) ≈ 1.414.
        let g = cycle_graph(8);
        let s = adjacency_spectrum(&g, 4000, 3);
        assert!((s.lambda1 - 2.0).abs() < 1e-3);
        let expect = 2.0 * (2.0 * std::f64::consts::PI / 8.0).cos();
        assert!((s.lambda2 - expect).abs() < 1e-2, "λ2={}", s.lambda2);
    }

    #[test]
    fn random_matchings_union_is_near_ramanujan() {
        let t = ExpanderTopology::generate(
            ExpanderParams {
                racks: 130,
                uplinks: 7,
                hosts_per_rack: 5,
            },
            17,
        );
        let s = adjacency_spectrum(t.graph(), 800, 4);
        assert!((s.lambda1 - 7.0).abs() < 1e-3);
        // Randomized matchings: λ2 should be near the Ramanujan bound
        // 2√6 ≈ 4.9, far below the trivial λ2 ≈ 7 of circulant unions.
        assert!(
            s.lambda2 < 1.25 * s.ramanujan_bound(),
            "λ2={} bound={}",
            s.lambda2,
            s.ramanujan_bound()
        );
        assert!(s.gap() > 1.5);
    }

    #[test]
    fn deterministic_result() {
        let g = complete_graph(8);
        let a = adjacency_spectrum(&g, 100, 7);
        let b = adjacency_spectrum(&g, 100, 7);
        assert_eq!(a.lambda1.to_bits(), b.lambda1.to_bits());
        assert_eq!(a.lambda2.to_bits(), b.lambda2.to_bits());
    }
}
