//! Opera reproduction workspace root: re-exports for examples and tests.
pub use opera as core;
