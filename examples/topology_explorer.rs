//! Topology explorer: generate the paper's 108-rack Opera topology and
//! walk through its graph-theoretic guarantees — the §3 design in numbers.
//!
//! Run with: `cargo run --release --example topology_explorer`

use topo::matching::validate_factorization;
use topo::opera::{OperaParams, OperaTopology};
use topo::spectral::adjacency_spectrum;

fn main() {
    let params = OperaParams::example_648();
    let (topo, seed) = OperaTopology::generate_validated(params, 1, 64);
    println!(
        "generated 648-host Opera topology (seed {seed}): {} racks, {} circuit switches,",
        topo.racks(),
        topo.switches()
    );
    println!(
        "{} matchings per switch, {} topology slices per cycle\n",
        topo.matchings_per_switch(),
        topo.slices_per_cycle()
    );

    // Guarantee 1 (§3.3): the matchings factor the complete rack graph.
    let all: Vec<_> = (0..topo.switches())
        .flat_map(|s| (0..topo.matchings_per_switch()).map(move |p| (s, p)))
        .map(|(s, p)| topo.matching(s, p).clone())
        .collect();
    validate_factorization(&all, topo.racks()).expect("disjoint complete factorization");
    println!(
        "[ok] the {} matchings tile every rack pair exactly once",
        all.len()
    );

    // Guarantee 2 (§3.1.2): every slice is a connected expander.
    let mut worst_gap = f64::INFINITY;
    let mut worst_diameter = 0;
    for s in 0..topo.slices_per_cycle() {
        let g = topo.slice(s).graph();
        assert!(g.is_connected(), "slice {s} disconnected");
        let stats = g.path_length_stats();
        worst_diameter = worst_diameter.max(stats.max);
        if s % 9 == 0 {
            let sp = adjacency_spectrum(&g, 200, s as u64);
            worst_gap = worst_gap.min(sp.gap());
        }
    }
    println!(
        "[ok] all {} slices connected; worst diameter {} hops",
        topo.slices_per_cycle(),
        worst_diameter
    );
    println!("[ok] sampled spectral gap >= {worst_gap:.2} (expander in every slice)");

    // Guarantee 3 (§3.1): every rack pair gets direct circuits each cycle.
    let mut min_direct = usize::MAX;
    for a in 0..topo.racks() {
        for b in 0..topo.racks() {
            if a != b {
                min_direct = min_direct.min(topo.direct_slices(a, b).len());
            }
        }
    }
    println!("[ok] every rack pair has >= {min_direct} usable direct-circuit slices per cycle");

    // And the ruleset this requires in a ToR (§6.2 / Table 1):
    let rules = opera::ruleset::ruleset_for(topo.racks(), topo.switches());
    println!(
        "\nToR ruleset: {} entries ({:.1}% of a Tofino's rule memory)",
        rules.entries, rules.utilization_pct
    );
}
