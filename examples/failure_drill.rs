//! Failure drill: inject link, ToR, and circuit-switch failures into an
//! Opera topology and watch connectivity and path stretch respond (§5.5,
//! Appendix E).
//!
//! Run with: `cargo run --release --example failure_drill`

use simkit::SimRng;
use topo::failures::{analyze_opera, opera_link_domain, FailureSet};
use topo::opera::{OperaParams, OperaTopology};

fn main() {
    let params = OperaParams {
        racks: 48,
        uplinks: 6,
        hosts_per_rack: 6,
        groups: 1,
    };
    let (topo, _) = OperaTopology::generate_validated(params, 3, 64);
    let domain = opera_link_domain(&topo);
    let mut rng = SimRng::new(99);

    let baseline = analyze_opera(&topo, &FailureSet::none());
    println!(
        "baseline: {} racks, avg path {:.2} hops, worst {} hops, no disconnections\n",
        topo.racks(),
        baseline.avg_path_len,
        baseline.max_path_len
    );

    println!("progressively failing uplink cables:");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10}",
        "failed", "worst_slice", "integrated", "avg_path", "max_path"
    );
    for pct in [2, 5, 10, 20, 30] {
        let n = domain.len() * pct / 100;
        let fails = FailureSet::sample(&mut rng, 0, topo.racks(), 0, topo.switches(), n, &domain);
        let r = analyze_opera(&topo, &fails);
        println!(
            "{:>7}% {:>12.4} {:>12.4} {:>10.2} {:>10}",
            pct, r.worst_slice_loss, r.all_slices_loss, r.avg_path_len, r.max_path_len
        );
    }

    println!("\nkilling circuit switches one by one:");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "killed", "worst_slice", "integrated", "avg_path"
    );
    for k in 0..topo.switches() - 2 {
        let fails = FailureSet {
            switches: (0..k).collect(),
            ..Default::default()
        };
        let r = analyze_opera(&topo, &fails);
        println!(
            "{:>8} {:>12.4} {:>12.4} {:>10.2}",
            k, r.worst_slice_loss, r.all_slices_loss, r.avg_path_len
        );
    }
    println!("\nshape: Opera absorbs single-digit-percent failures with path stretch");
    println!("instead of disconnection — the expander property at work (§5.5).");
}
