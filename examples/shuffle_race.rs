//! Shuffle race: the paper's §5.2 scenario in miniature — an all-to-all
//! shuffle (MapReduce-style) raced on Opera and on a cost-equivalent
//! static expander. Opera carries every byte over zero-tax direct
//! circuits; the expander pays the multi-hop bandwidth tax.
//!
//! Run with: `cargo run --release --example shuffle_race`

use opera::{opera_net, static_net, OperaNetConfig, StaticNetConfig, StaticTopologyKind};
use simkit::{SimRng, SimTime};
use topo::expander::ExpanderParams;
use workloads::gen::ScenarioGen;

fn main() {
    let flow_size = 100_000; // 100 KB, Facebook Hadoop's median inter-rack flow
    let horizon = SimTime::from_ms(200);

    // --- Opera: 48 racks x 4 hosts. The application tags shuffle flows
    // as bulk (threshold 0), so everything takes direct circuits.
    let mut cfg = OperaNetConfig::small_test();
    cfg.params.racks = 48;
    cfg.bulk_threshold = 0;
    let hosts = cfg.hosts();
    let flows = ScenarioGen::shuffle(hosts, flow_size, SimTime::ZERO);
    println!(
        "shuffle: {} hosts, {} flows x {} KB",
        hosts,
        flows.len(),
        flow_size / 1000
    );

    let mut sim = opera_net::build(cfg, flows);
    sim.run_until(horizon);
    let t = sim.world.logic.tracker();
    report("opera (direct circuits)", t);

    // --- Cost-equivalent static expander: 64 racks x 3 hosts, u = 5.
    let cfg = StaticNetConfig {
        kind: StaticTopologyKind::Expander(ExpanderParams {
            racks: 64,
            uplinks: 5,
            hosts_per_rack: 3,
        }),
        ..StaticNetConfig::small_expander()
    };
    let mut rng = SimRng::new(1);
    let flows = ScenarioGen::shuffle_staggered(192, flow_size, SimTime::from_ms(10), &mut rng);
    let mut sim = static_net::build(cfg, flows);
    sim.run_until(horizon);
    report("expander (multi-hop, taxed)", sim.world.logic.tracker());
}

fn report(label: &str, tracker: &netsim::FlowTracker) {
    let mut fcts: Vec<f64> = tracker
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .map(|t| t.as_ms_f64())
        .collect();
    fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p99 = if fcts.is_empty() {
        f64::NAN
    } else {
        fcts[(fcts.len() * 99 / 100).min(fcts.len() - 1)]
    };
    println!(
        "{label:<30} {}/{} flows done, 99%-tile FCT {:.1} ms",
        tracker.completed(),
        tracker.len(),
        p99,
    );
}
