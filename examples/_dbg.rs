//! Scratch driver: MCF λ on a 64-rack expander under a permutation demand.
//! Handy when poking at solver accuracy; not part of any figure.

use flowsim::*;
use topo::expander::*;

fn main() {
    let t = ExpanderTopology::generate(
        ExpanderParams {
            racks: 64,
            uplinks: 7,
            hosts_per_rack: 5,
        },
        5,
    );
    let n = 64;
    let demands: Vec<Demand> = (0..n)
        .map(|r| Demand {
            src: r,
            dst: (r + n / 2) % n,
            amount: 50.0,
        })
        .collect();
    let tor: Vec<usize> = (0..n).collect();
    let res = expander_model(t.graph(), &tor, &demands, 10.0, 50.0);
    let mut rates = res.rates.clone();
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "min {:.2} med {:.2} max {:.2} agg {:.3}",
        rates[0],
        rates[n / 2],
        rates[n - 1],
        res.throughput_fraction()
    );
    let stats = t.graph().path_length_stats();
    println!("avg path len {:.2} max {}", stats.avg, stats.max);
}
