//! Quickstart: build a small Opera network, send a low-latency flow and a
//! bulk flow, and inspect what the dynamic topology did with each.
//!
//! Run with: `cargo run --release --example quickstart`

use opera::{opera_net, OperaNetConfig};
use simkit::SimTime;
use workloads::FlowSpec;

fn main() {
    // A 32-host Opera network: 8 racks × 4 hosts, 4 rotor circuit
    // switches, 10 µs topology slices. Flows ≥ 500 KB are bulk.
    let cfg = OperaNetConfig::small_test();
    println!(
        "Opera network: {} racks x {} hosts, {} circuit switches, slice {}",
        cfg.params.racks,
        cfg.params.hosts_per_rack,
        cfg.params.uplinks,
        cfg.timing.slice(),
    );

    // Two flows from host 1 (rack 0) to host 30 (rack 7):
    //   * 20 KB   -> low-latency class: forwarded immediately over the
    //                current expander, paying a small bandwidth tax;
    //   * 2 MB    -> bulk class: buffered by RotorLB until direct circuits
    //                to rack 7 come around, paying zero bandwidth tax.
    let flows = vec![
        FlowSpec {
            src: 1,
            dst: 30,
            size: 20_000,
            start: SimTime::ZERO,
        },
        FlowSpec {
            src: 1,
            dst: 30,
            size: 2_000_000,
            start: SimTime::ZERO,
        },
    ];

    let mut sim = opera_net::build(cfg, flows);
    sim.run_until(SimTime::from_ms(100));

    let tracker = sim.world.logic.tracker();
    for (i, f) in tracker.flows().iter().enumerate() {
        println!(
            "flow {i}: {:>9} bytes, class {:?}, FCT = {}",
            f.size,
            f.class,
            f.fct()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unfinished".into()),
        );
    }
    println!(
        "events processed: {}, packets delivered: {}",
        sim.events_processed(),
        sim.world.fabric.counters.delivered,
    );

    // The topology itself is inspectable: which slices give rack 0 a
    // direct circuit to rack 7?
    let topo = sim.world.logic.topology();
    println!(
        "slices with a direct rack0->rack7 circuit (cycle of {}): {:?}",
        topo.slices_per_cycle(),
        topo.direct_slices(0, 7),
    );
}
