//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored stub
//! provides exactly the subset of the `rand` 0.8 API the workspace uses:
//! the [`RngCore`] trait (implemented by `simkit::SimRng`) and the
//! [`Error`] type referenced by `RngCore::try_fill_bytes`. Swapping the
//! real `rand` back in requires only editing `[workspace.dependencies]`.

use std::fmt;

/// Error type returned by fallible `RngCore` methods.
///
/// Mirrors `rand::Error` closely enough for trait signatures; the stub
/// generators in this workspace are infallible and never construct it.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Create an error carrying a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core trait of the `rand` crate: an infinite stream of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

pub mod distributions {
    //! Minimal `rand::distributions` surface: the [`Distribution`] trait
    //! and [`Uniform`] over floats and unsigned integers — exactly what
    //! the workload generators need, so they no longer hand-roll
    //! uniform sampling on top of raw generator output.

    use crate::RngCore;

    /// Types that can produce values of `T` from a source of randomness.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Types samplable uniformly from a range by [`Uniform`].
    pub trait SampleUniform: Copy + PartialOrd {
        /// Sample from `[low, high)` (or `[low, high]` when `inclusive`).
        fn sample_range<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    /// Uniform distribution over a range.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<X: SampleUniform> {
        low: X,
        high: X,
        inclusive: bool,
    }

    impl<X: SampleUniform> Uniform<X> {
        /// Uniform over the half-open range `[low, high)`.
        ///
        /// # Panics
        /// Panics unless `low < high` (mirrors `rand` 0.8).
        pub fn new(low: X, high: X) -> Self {
            assert!(low < high, "Uniform::new called with empty range");
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over the closed range `[low, high]`.
        ///
        /// # Panics
        /// Panics unless `low <= high`.
        pub fn new_inclusive(low: X, high: X) -> Self {
            assert!(low <= high, "Uniform::new_inclusive with low > high");
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<X: SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
            X::sample_range(rng, self.low, self.high, self.inclusive)
        }
    }

    /// 53-bit uniform in `[0, 1)`.
    fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Debiased integer sampling in `[0, range)` via Lemire's
    /// widening-multiply method (identical to `simkit::SimRng::below`,
    /// keeping streams stable if callers migrate).
    fn below<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
        debug_assert!(range > 0);
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (range as u128);
            let lo = m as u64;
            if lo >= range || lo >= lo.wrapping_neg() % range {
                return (m >> 64) as u64;
            }
        }
    }

    impl SampleUniform for f64 {
        fn sample_range<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            _inclusive: bool,
        ) -> Self {
            // The closed/half-open distinction is measure-zero for floats.
            low + unit_f64(rng) * (high - low)
        }
    }

    macro_rules! uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (high - low) as u64;
                    let range = if inclusive { span.checked_add(1) } else { Some(span) };
                    match range {
                        // `low ..= u64::MAX`-style full range: raw output.
                        None => rng.next_u64() as $t,
                        Some(r) => low + below(rng, r) as $t,
                    }
                }
            }
        )*};
    }
    uniform_uint!(u64, u32, usize);

    #[cfg(test)]
    mod tests {
        use super::*;

        /// xorshift64* — deterministic local test generator.
        struct TestRng(u64);
        impl RngCore for TestRng {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                let mut x = self.0;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.0 = x;
                x.wrapping_mul(0x2545_F491_4F6C_DD1D)
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let b = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&b[..chunk.len()]);
                }
            }
        }

        #[test]
        fn uniform_f64_in_range() {
            let d = Uniform::new(2.0, 5.0);
            let mut rng = TestRng(7);
            for _ in 0..1000 {
                let v = d.sample(&mut rng);
                assert!((2.0..5.0).contains(&v), "{v}");
            }
        }

        #[test]
        fn uniform_u64_half_open_and_inclusive() {
            let mut rng = TestRng(9);
            let d = Uniform::new(10u64, 13);
            let mut seen = [false; 3];
            for _ in 0..300 {
                let v = d.sample(&mut rng);
                assert!((10..13).contains(&v));
                seen[(v - 10) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
            let di = Uniform::new_inclusive(0u64, u64::MAX);
            let _ = di.sample(&mut rng); // full range must not overflow
        }

        #[test]
        fn uniform_usize_deterministic() {
            let run = |seed| {
                let mut rng = TestRng(seed);
                let d = Uniform::new(0usize, 1000);
                (0..50).map(|_| d.sample(&mut rng)).collect::<Vec<_>>()
            };
            assert_eq!(run(3), run(3));
            assert_ne!(run(3), run(4));
        }

        #[test]
        #[should_panic(expected = "empty range")]
        fn uniform_empty_range_panics() {
            let _ = Uniform::new(5u64, 5);
        }
    }
}
