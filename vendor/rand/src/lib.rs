//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored stub
//! provides exactly the subset of the `rand` 0.8 API the workspace uses:
//! the [`RngCore`] trait (implemented by `simkit::SimRng`) and the
//! [`Error`] type referenced by `RngCore::try_fill_bytes`. Swapping the
//! real `rand` back in requires only editing `[workspace.dependencies]`.

use std::fmt;

/// Error type returned by fallible `RngCore` methods.
///
/// Mirrors `rand::Error` closely enough for trait signatures; the stub
/// generators in this workspace are infallible and never construct it.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Create an error carrying a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core trait of the `rand` crate: an infinite stream of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
