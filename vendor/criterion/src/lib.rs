//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no access to crates.io, so this vendored stub
//! implements the subset of the criterion 0.5 API that
//! `crates/bench/benches/hot_paths.rs` uses: [`Criterion`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (the
//! `name/config/targets` form).
//!
//! It is a real, if simple, harness: each `bench_function` runs a warm-up,
//! then `sample_size` timed samples, and prints a [`Summary`]
//! (min/median/mean/max plus the sample standard deviation) per
//! iteration. The same measurement core ([`sample_batched`] +
//! [`Summary::from_samples`]) backs the `bench_record` perf-trajectory
//! binary in `crates/bench`, so bench output and committed perf records
//! are directly comparable. Plots and baseline comparison are out of
//! scope; swap the real criterion back in via `[workspace.dependencies]`
//! when registry access exists.

use std::time::{Duration, Instant};

/// Timing statistics over one benchmark's samples.
///
/// `median` and `stddev` exist because single-shot wall times on shared
/// CI runners are noisy: the median is robust to one slow outlier sample
/// and the standard deviation quantifies how much to trust a comparison
/// between two runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Arithmetic mean of the samples.
    pub mean: Duration,
    /// Median sample (lower-middle for even counts — stable, and biased
    /// toward the *faster* half, which is the repeatable signal).
    pub median: Duration,
    /// Population standard deviation of the samples.
    pub stddev: Duration,
}

impl Summary {
    /// Summarize a non-empty sample set; `None` when `samples` is empty.
    pub fn from_samples(samples: &[Duration]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let total: Duration = samples.iter().sum();
        let mean = total / n as u32;
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[(n - 1) / 2];
        let mean_ns = mean.as_nanos() as f64;
        let var = samples
            .iter()
            .map(|s| {
                let d = s.as_nanos() as f64 - mean_ns;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let stddev = Duration::from_nanos(var.sqrt().round() as u64);
        Some(Summary {
            samples: n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            median,
            stddev,
        })
    }
}

/// The shared measurement core: one warm-up call, then `sample_size`
/// timed calls of `routine` on fresh inputs from `setup` (setup time is
/// excluded from every sample). Both [`Bencher::iter_batched`] and the
/// `bench_record` trajectory recorder are thin wrappers over this, so a
/// number printed by a bench and a number committed to `BENCH_*.json`
/// mean the same thing.
pub fn sample_batched<I, O, S, R>(sample_size: usize, mut setup: S, mut routine: R) -> Vec<Duration>
where
    S: FnMut() -> I,
    R: FnMut(I) -> O,
{
    black_box(routine(setup()));
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        samples.push(start.elapsed());
    }
    samples
}

/// Hint for how `iter_batched` amortizes setup; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Opaque black box preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark context passed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `routine`, called once per sample after a warm-up period.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, setup: S, routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples
            .extend(sample_batched(self.sample_size, setup, routine));
    }
}

/// The benchmark driver: configure, then register benchmark functions.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement time (advisory in this stub).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up time before sampling begins.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one named benchmark and print its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        let Some(s) = Summary::from_samples(&b.samples) else {
            println!("{name:<40} (no samples)");
            return self;
        };
        println!(
            "{name:<40} time: [{} {} {}]  mean: {}  σ: {}",
            fmt_duration(s.min),
            fmt_duration(s.median),
            fmt_duration(s.max),
            fmt_duration(s.mean),
            fmt_duration(s.stddev),
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Group benchmark functions under a shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $group:ident;
        config = $config:expr;
        targets = $( $target:path ),+ $(,)?
    ) => {
        /// Benchmark group entry point (generated by `criterion_group!`).
        pub fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $group:ident, $( $target:path ),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $group;
            config = $crate::Criterion::default();
            targets = $( $target ),+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ( $( $group:path ),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 3);
    }

    #[test]
    fn summary_median_and_stddev() {
        let ms = Duration::from_millis;
        // Median of an even count is the lower-middle; the 100ms outlier
        // must not move it.
        let s = Summary::from_samples(&[ms(10), ms(12), ms(14), ms(100)]).unwrap();
        assert_eq!(s.median, ms(12));
        assert_eq!(s.min, ms(10));
        assert_eq!(s.max, ms(100));
        assert_eq!(s.mean, ms(34));
        // Population stddev of {10,12,14,100}ms around 34ms: √(1454) ms.
        let want = (1454.0f64).sqrt() * 1e6;
        let got = s.stddev.as_nanos() as f64;
        assert!((got - want).abs() < 1e3, "stddev {got} vs {want}");
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1));
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 5); // 1 warm-up + 4 samples
    }
}
