//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this vendored stub
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], range and `prop::collection::vec`
//! strategies, and [`test_runner::ProptestConfig`].
//!
//! Semantics versus real proptest:
//! * cases are generated from a deterministic per-test seed (FNV-1a of the
//!   test name mixed with the case index), so failures reproduce exactly;
//! * there is **no shrinking** — a failing case reports its inputs via the
//!   ordinary `assert!` panic message;
//! * `PROPTEST_CASES` in the environment overrides the configured case
//!   count, like the real crate.

pub mod strategy {
    //! Value-generation strategies (uniform draws, no shrinking).

    use std::ops::Range;

    /// A source of random bits for strategy sampling.
    ///
    /// xoshiro256**-style, seeded via SplitMix64; self-contained so the
    /// stub has no dependencies.
    #[derive(Debug, Clone)]
    pub struct CaseRng {
        s: [u64; 4],
    }

    impl CaseRng {
        /// Expand a 64-bit seed into generator state.
        pub fn new(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            CaseRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty strategy range");
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                let lo = m as u64;
                if lo >= bound.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// Anything that can produce values for a `proptest!` argument.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut CaseRng) -> Self::Value;
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut CaseRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl Strategy for Range<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut CaseRng) -> u32 {
            self.start + rng.below((self.end - self.start) as u64) as u32
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut CaseRng) -> u64 {
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut CaseRng) -> i64 {
            self.start + rng.below((self.end - self.start) as u64) as i64
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut CaseRng) -> f64 {
            self.start + rng.f64() * (self.end - self.start)
        }
    }

    /// FNV-1a over a test name, for stable per-test seeds.
    pub fn seed_for(name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ case.wrapping_mul(0xA24B_AED4_963E_E407)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::{CaseRng, Strategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s with element strategy `S` and a length
    /// drawn uniformly from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy: lengths from `len`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut CaseRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Mirror of proptest's `ProptestConfig`; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cfg.cases)
    }
}

/// `prop::` path namespace, as re-exported by the real prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each listed function runs `cases` times with
/// arguments drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::test_runner::effective_cases(&cfg);
                for case in 0..cases as u64 {
                    let mut __proptest_rng = $crate::strategy::CaseRng::new(
                        $crate::strategy::seed_for(stringify!($name), case),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 3usize..9, x in 1.5f64..2.5, s in 0u64..10) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!(s < 10);
        }

        #[test]
        fn vec_strategy_len_and_bounds(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        use crate::strategy::seed_for;
        assert_eq!(seed_for("a", 0), seed_for("a", 0));
        assert_ne!(seed_for("a", 0), seed_for("a", 1));
        assert_ne!(seed_for("a", 0), seed_for("b", 0));
    }
}
