//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this vendored stub
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], range and `prop::collection::vec`
//! strategies, and [`test_runner::ProptestConfig`].
//!
//! Semantics versus real proptest:
//! * cases are generated from a deterministic per-test seed (FNV-1a of the
//!   test name mixed with the case index), so failures reproduce exactly;
//! * failing cases are **shrunk**: each argument is greedily bisected
//!   toward its strategy's simplest value (range start; shorter vectors)
//!   while the failure persists, and the final panic reports the
//!   minimized inputs — simpler than real proptest's shrink trees, but
//!   the same contract: the reported case is a local minimum;
//! * `PROPTEST_CASES` in the environment overrides the configured case
//!   count, like the real crate.

pub mod strategy {
    //! Value-generation strategies (uniform draws, no shrinking).

    use std::ops::Range;

    /// A source of random bits for strategy sampling.
    ///
    /// xoshiro256**-style, seeded via SplitMix64; self-contained so the
    /// stub has no dependencies.
    #[derive(Debug, Clone)]
    pub struct CaseRng {
        s: [u64; 4],
    }

    impl CaseRng {
        /// Expand a 64-bit seed into generator state.
        pub fn new(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            CaseRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty strategy range");
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                let lo = m as u64;
                if lo >= bound.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// Anything that can produce values for a `proptest!` argument.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut CaseRng) -> Self::Value;
        /// Simpler candidates to try when `value` made the property fail,
        /// most aggressive first (for ranges: bisection toward the range
        /// start). An empty list means `value` is already minimal.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }
    }

    /// Bisection shrink candidates for an integer distance `d = value -
    /// start` (as u128): `value - d`, `value - d/2`, `value - d/4`, ...
    fn shrink_int_distance(d: u128) -> Vec<u128> {
        let mut steps = Vec::new();
        let mut step = d;
        while step > 0 {
            steps.push(step);
            step /= 2;
        }
        steps
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut CaseRng) -> $t {
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let d = (*value as i128 - self.start as i128) as u128;
                    shrink_int_distance(d)
                        .into_iter()
                        .map(|s| (*value as i128 - s as i128) as $t)
                        .collect()
                }
            }
        )+};
    }

    impl_int_range_strategy!(usize, u32, u64, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut CaseRng) -> f64 {
            self.start + rng.f64() * (self.end - self.start)
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            let mut out = Vec::new();
            let mut step = value - self.start;
            // 53 halvings take any finite distance below one ulp.
            for _ in 0..53 {
                if step <= 0.0 || value - step >= *value {
                    break;
                }
                out.push(value - step);
                step /= 2.0;
            }
            out
        }
    }

    macro_rules! impl_tuple_strategy {
        ($( ( $($S:ident . $idx:tt),+ ) )+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+)
            where
                $($S::Value: Clone),+
            {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut CaseRng) -> Self::Value {
                    // Component order matches the old per-argument draw
                    // order, so existing tests see the same cases.
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut t = value.clone();
                            t.$idx = cand;
                            out.push(t);
                        }
                    )+
                    out
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// Pin a property-body closure's argument type to a strategy's
    /// `Value` (the `proptest!` macro cannot name that type, and closure
    /// parameters must be resolved before the body type-checks).
    pub fn bind_check<S: Strategy, F: Fn(S::Value)>(_strat: &S, f: F) -> F {
        f
    }

    /// FNV-1a over a test name, for stable per-test seeds.
    pub fn seed_for(name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ case.wrapping_mul(0xA24B_AED4_963E_E407)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::{CaseRng, Strategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s with element strategy `S` and a length
    /// drawn uniformly from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy: lengths from `len`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut CaseRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Shorter prefixes first (bisecting toward the minimum
            // length), then element-wise shrinks at full length.
            for n in Strategy::shrink(&self.len, &value.len()) {
                out.push(value[..n].to_vec());
            }
            for (i, v) in value.iter().enumerate() {
                for cand in self.elem.shrink(v) {
                    let mut trial = value.clone();
                    trial[i] = cand;
                    out.push(trial);
                }
            }
            out
        }
    }
}

pub mod panic_guard {
    //! Per-thread panic-report suppression for the shrink phase.
    //!
    //! Shrinking re-runs a failing property body many times, and every
    //! re-run panics by design. Swapping the process-global panic hook
    //! in and out would race with other tests failing (or shrinking)
    //! concurrently on cargo's parallel test threads, so instead one
    //! filtering hook is installed permanently on first use and
    //! suppression is a thread-local flag: only the shrinking thread's
    //! reports are silenced, and only while its [`Quiet`] guard lives.

    use std::cell::Cell;
    use std::sync::Once;

    thread_local! {
        static SILENCED: Cell<bool> = const { Cell::new(false) };
    }

    static INSTALL: Once = Once::new();

    /// RAII guard: silences panic reports from the current thread until
    /// dropped (including on unwind).
    #[derive(Debug)]
    pub struct Quiet;

    impl Quiet {
        /// Install the filtering hook (once per process) and raise this
        /// thread's suppression flag.
        pub fn new() -> Quiet {
            INSTALL.call_once(|| {
                let prev = std::panic::take_hook();
                std::panic::set_hook(Box::new(move |info| {
                    if !SILENCED.with(Cell::get) {
                        prev(info);
                    }
                }));
            });
            SILENCED.with(|s| s.set(true));
            Quiet
        }
    }

    impl Default for Quiet {
        fn default() -> Self {
            Quiet::new()
        }
    }

    impl Drop for Quiet {
        fn drop(&mut self) {
            SILENCED.with(|s| s.set(false));
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Mirror of proptest's `ProptestConfig`; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cfg.cases)
    }
}

/// `prop::` path namespace, as re-exported by the real prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each listed function runs `cases` times with
/// arguments drawn from its strategies. A failing case is greedily
/// shrunk — each argument bisected toward its strategy's simplest value
/// while the failure persists — and the minimized inputs are printed
/// before the body re-runs uncaught so the original assertion fires.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_clone)]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::test_runner::effective_cases(&cfg);
                let __proptest_strat = ($($strat,)+);
                let __proptest_check =
                    $crate::strategy::bind_check(&__proptest_strat, |__proptest_tuple| {
                        let ($($arg,)+) = __proptest_tuple;
                        $body
                    });
                let __proptest_fails = |__proptest_vals: &_| {
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        __proptest_check(::std::clone::Clone::clone(__proptest_vals))
                    }))
                    .is_err()
                };
                for case in 0..cases as u64 {
                    let mut __proptest_rng = $crate::strategy::CaseRng::new(
                        $crate::strategy::seed_for(stringify!($name), case),
                    );
                    let mut __proptest_vals = $crate::strategy::Strategy::generate(
                        &__proptest_strat,
                        &mut __proptest_rng,
                    );
                    if !__proptest_fails(&__proptest_vals) {
                        continue;
                    }
                    // Shrink quietly — every candidate re-run panics by
                    // design. The Quiet guard silences only THIS
                    // thread's reports (concurrently failing tests are
                    // unaffected) and lifts on drop, unwind included.
                    {
                        let __proptest_quiet = $crate::panic_guard::Quiet::new();
                        let mut __proptest_budget = 512usize;
                        loop {
                            let mut __proptest_improved = false;
                            for __proptest_cand in $crate::strategy::Strategy::shrink(
                                &__proptest_strat,
                                &__proptest_vals,
                            ) {
                                if __proptest_budget == 0 {
                                    break;
                                }
                                __proptest_budget -= 1;
                                if __proptest_fails(&__proptest_cand) {
                                    __proptest_vals = __proptest_cand;
                                    __proptest_improved = true;
                                    break;
                                }
                            }
                            if !__proptest_improved || __proptest_budget == 0 {
                                break;
                            }
                        }
                        drop(__proptest_quiet);
                    }
                    let ($($arg,)+) = __proptest_vals;
                    eprintln!(
                        "[proptest] {} case {case} failed; minimized failing inputs: {}",
                        stringify!($name),
                        [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", "),
                    );
                    // Re-run the minimized case uncaught so the original
                    // assertion panics with its own message and location.
                    $body
                    panic!(
                        "[proptest] {}: shrunk case no longer fails (flaky property?)",
                        stringify!($name),
                    );
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 3usize..9, x in 1.5f64..2.5, s in 0u64..10) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!(s < 10);
        }

        #[test]
        fn vec_strategy_len_and_bounds(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        use crate::strategy::seed_for;
        assert_eq!(seed_for("a", 0), seed_for("a", 0));
        assert_ne!(seed_for("a", 0), seed_for("a", 1));
        assert_ne!(seed_for("a", 0), seed_for("b", 0));
    }

    #[test]
    fn integer_shrink_bisects_toward_start() {
        use crate::strategy::Strategy;
        let s = 10usize..100;
        let cands = s.shrink(&83);
        // Most aggressive first (the range start), then bisection.
        assert_eq!(cands[0], 10);
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*cands.last().unwrap(), 82);
        assert!(s.shrink(&10).is_empty());
    }

    #[test]
    fn float_shrink_bisects_toward_start() {
        use crate::strategy::Strategy;
        let s = 1.0f64..8.0;
        let cands = s.shrink(&5.0);
        assert_eq!(cands[0], 1.0);
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
        assert!(cands.iter().all(|&c| (1.0..5.0).contains(&c)));
        assert!(s.shrink(&1.0).is_empty());
    }

    #[test]
    fn vec_shrink_tries_prefixes_and_elements() {
        use crate::strategy::Strategy;
        let s = prop::collection::vec(0u64..10, 0..6);
        let cands = s.shrink(&vec![7, 3]);
        // Shorter prefixes first...
        assert_eq!(cands[0], Vec::<u64>::new());
        assert!(cands.contains(&vec![7]));
        // ...then element-wise shrinks at full length.
        assert!(cands.contains(&vec![0, 3]));
        assert!(cands.contains(&vec![7, 0]));
    }

    // A deliberately failing property, minimized by the harness: the
    // greedy bisection must land exactly on the boundary case.
    mod shrink_fixture {
        use crate::prelude::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// The `(n, slack)` of the most recent body run.
        pub static LAST: (AtomicUsize, AtomicUsize) = (AtomicUsize::new(0), AtomicUsize::new(0));

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            fn fails_at_50_or_more(n in 0usize..100, slack in 0u64..4) {
                LAST.0.store(n, Ordering::SeqCst);
                LAST.1.store(slack as usize, Ordering::SeqCst);
                prop_assert!(n < 50);
            }
        }
        pub fn run() {
            fails_at_50_or_more();
        }
    }

    #[test]
    fn failing_property_reports_minimized_case() {
        use std::sync::atomic::Ordering;
        let err = std::panic::catch_unwind(shrink_fixture::run).expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        // The minimized case re-runs last and panics with the original
        // assertion message...
        assert!(msg.contains("n < 50"), "unexpected panic message: {msg}");
        // ...and the greedy bisection reached the exact boundary (the
        // smallest failing n, the smallest slack), not the raw case.
        assert_eq!(shrink_fixture::LAST.0.load(Ordering::SeqCst), 50);
        assert_eq!(shrink_fixture::LAST.1.load(Ordering::SeqCst), 0);
    }
}
