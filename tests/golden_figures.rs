//! Tier-1 golden-baseline regression test: every figure driver's
//! quick-mode tables must match the committed CSVs under `goldens/`.
//!
//! The experiment harness is deterministic — fixed quick grids, fixed
//! base seed, replicate seeds derived from `(seed, point, rep)` only,
//! thread-invariant collection — so any diff here is a behavioral change
//! in some simulation layer (topo / flowsim / netsim / transport /
//! workloads), named down to the driver, table, row, and column that
//! moved.
//!
//! After an *intended* behavioral change, re-record the baselines with
//! `OPERA_BLESS=1 cargo test -q golden` (or `cargo run -p bench --bin
//! golden_check -- --bless`) and commit the `goldens/` diff alongside
//! the change. Blessing an unmodified tree is byte-idempotent.

use bench::figures;

#[test]
fn golden_figures() {
    let bless = matches!(
        std::env::var("OPERA_BLESS").ok().as_deref(),
        Some("1") | Some("true")
    );
    let root = figures::golden_root();
    let ctx = figures::golden_ctx(0);
    let mut failures: Vec<String> = Vec::new();
    for (exp, build) in figures::all() {
        let drifts = figures::golden_run(&exp, build, &ctx, &root, bless)
            .unwrap_or_else(|e| panic!("{}: golden IO error: {e}", exp.name));
        for d in drifts {
            failures.push(d.to_string());
        }
    }
    assert!(
        failures.is_empty(),
        "{} drift(s) from committed goldens:\n  {}\n\
         If this change is intended, re-record with `OPERA_BLESS=1 cargo test -q golden` \
         and commit the goldens/ diff.",
        failures.len(),
        failures.join("\n  ")
    );
}
