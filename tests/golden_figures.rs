//! Tier-1 golden-baseline regression test: every figure driver's
//! quick-mode tables must match the committed CSVs under `goldens/`.
//!
//! The experiment harness is deterministic — fixed quick grids, fixed
//! base seed, replicate seeds derived from `(seed, point, rep)` only,
//! thread-invariant collection — so any diff here is a behavioral change
//! in some simulation layer (topo / flowsim / netsim / transport /
//! workloads), named down to the driver, table, row, and column that
//! moved.
//!
//! After an *intended* behavioral change, re-record the baselines with
//! `OPERA_BLESS=1 cargo test -q golden` (or `cargo run -p bench --bin
//! golden_check -- --bless`) and commit the `goldens/` diff alongside
//! the change. Blessing an unmodified tree is byte-idempotent.

use bench::figures;

#[test]
fn golden_figures() {
    let bless = matches!(
        std::env::var("OPERA_BLESS").ok().as_deref(),
        Some("1") | Some("true")
    );
    let root = figures::golden_root();
    let ctx = figures::golden_ctx(0);
    let mut failures: Vec<String> = Vec::new();
    for (exp, build) in figures::all() {
        let drifts = figures::golden_run(&exp, build, &ctx, &root, bless)
            .unwrap_or_else(|e| panic!("{}: golden IO error: {e}", exp.name));
        for d in drifts {
            failures.push(d.to_string());
        }
    }
    assert!(
        failures.is_empty(),
        "{} drift(s) from committed goldens:\n  {}\n\
         If this change is intended, re-record with `OPERA_BLESS=1 cargo test -q golden` \
         and commit the goldens/ diff.",
        failures.len(),
        failures.join("\n  ")
    );
}

/// Byte-identity companion to [`golden_figures`]: every driver's fresh
/// quick-mode CSV rendering must equal the committed golden file
/// *byte-for-byte*, not just within the tolerance-aware cell diff. This
/// is the contract the timing-wheel scheduler must uphold — equal-time
/// events fire in schedule order, so replacing the event queue moves no
/// cell anywhere — and byte equality also pins the CSV rendering
/// itself (column order, float formatting, line endings).
#[test]
fn golden_figures_byte_identical() {
    if matches!(
        std::env::var("OPERA_BLESS").ok().as_deref(),
        Some("1") | Some("true")
    ) {
        return; // a bless rewrites the files; identity is vacuous
    }
    let root = figures::golden_root();
    let ctx = figures::golden_ctx(0);
    let mut failures: Vec<String> = Vec::new();
    for (exp, build) in figures::all() {
        for table in build(&ctx) {
            let path = root.join(exp.name).join(format!("{}.csv", table.name));
            let committed = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: read {}: {e}", exp.name, path.display()));
            if table.to_csv() != committed {
                failures.push(format!("{}/{}", exp.name, table.name));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "fresh CSV differs byte-for-byte from committed golden for: {}",
        failures.join(", ")
    );
}
