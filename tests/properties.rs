//! Property-based tests (proptest) on the core invariants the design
//! rests on: factorization completeness, slice-schedule correctness,
//! solver feasibility, transport delivery, and statistics sanity.

use proptest::prelude::*;
use simkit::stats::Samples;
use simkit::SimRng;
use topo::matching::{factorize_complete, validate_factorization};
use topo::opera::{OperaParams, OperaTopology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random factorizations are complete and disjoint for any rack count.
    #[test]
    fn factorization_invariants(n in 2usize..80, seed in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        let ms = factorize_complete(n, &mut rng);
        prop_assert!(validate_factorization(&ms, n).is_ok());
    }

    /// The slice schedule visits every matching of every switch exactly
    /// once per cycle, for arbitrary (divisible) parameters.
    #[test]
    fn schedule_visits_everything(
        u in 2usize..6,
        mult in 2usize..8,
        groups_pow in 0usize..2,
        seed in 0u64..500,
    ) {
        let groups = if u % 2 == 0 && groups_pow == 1 { 2 } else { 1 };
        let params = OperaParams {
            racks: u * mult,
            uplinks: u,
            hosts_per_rack: 2,
            groups,
        };
        let topo = OperaTopology::generate(params, seed);
        for j in 0..topo.switches() {
            let mut seen = vec![0usize; topo.matchings_per_switch()];
            for s in 0..topo.slices_per_cycle() {
                seen[topo.position_at(j, s)] += 1;
            }
            // Every matching appears, equally often.
            let expect = topo.slices_per_cycle() / topo.matchings_per_switch();
            prop_assert!(seen.iter().all(|&c| c == expect));
        }
    }

    /// Every rack pair gets at least one usable direct slice per cycle.
    #[test]
    fn direct_circuits_complete(mult in 2usize..6, seed in 0u64..200) {
        let u = 4;
        let params = OperaParams { racks: u * mult, uplinks: u, hosts_per_rack: 2, groups: 1 };
        let topo = OperaTopology::generate(params, seed);
        for a in 0..topo.racks() {
            for b in 0..topo.racks() {
                if a != b {
                    prop_assert!(!topo.direct_slices(a, b).is_empty());
                }
            }
        }
    }

    /// Max-min allocations never violate capacities and are Pareto
    /// efficient on the bottleneck.
    #[test]
    fn max_min_feasible(
        caps in prop::collection::vec(1.0f64..100.0, 2..8),
        nflows in 2usize..10,
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let mut inst = flowsim::Instance::new();
        for &c in &caps {
            inst.add_link(c);
        }
        for _ in 0..nflows {
            let len = 1 + rng.index(caps.len());
            let mut route = Vec::new();
            for _ in 0..len {
                route.push((rng.index(caps.len()), 1.0));
            }
            inst.add_flow(route, f64::INFINITY);
        }
        let rates = flowsim::max_min_rates(&inst);
        let rem = inst.residual(&rates);
        // Feasible:
        for (l, &r) in rem.iter().enumerate() {
            prop_assert!(r >= -1e-6, "link {l} oversubscribed by {r}");
        }
        // Non-trivial: at least one link saturated (flows exist).
        prop_assert!(rem.iter().any(|&r| r < 1e-6));
        // All rates positive.
        prop_assert!(rates.iter().all(|&x| x > 0.0));
    }

    /// Quantiles of a sample set are always actual sample values and
    /// ordered in q.
    #[test]
    fn quantiles_ordered(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Samples::new();
        for &v in &values {
            s.push(v);
        }
        let q25 = s.quantile(0.25).unwrap();
        let q50 = s.quantile(0.5).unwrap();
        let q99 = s.quantile(0.99).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q99);
        prop_assert!(values.contains(&q50));
    }

    /// NDP delivers flows of arbitrary size between two hosts with exact
    /// byte accounting.
    #[test]
    fn ndp_delivers_any_size(size in 1u64..3_000_000, seed in 0u64..100) {
        use netsim::fabric::{Fabric, LinkSpec, QueueConfig};
        use netsim::{NetLogic, NetWorld, FlowTracker, Packet};
        use simkit::engine::EventContext;
        use simkit::{SimTime, Simulator};
        use transport::{NdpHost, NdpParams, Transport, TransportTimer};

        struct Pair {
            hosts: Vec<NdpHost>,
            tracker: FlowTracker,
            size: u64,
            started: bool,
        }
        impl Pair {
            fn apply(&mut self, host: usize, actions: transport::Actions,
                     ctx: &mut EventContext<'_, netsim::NetEvent>) {
                for (at, which) in actions.timers {
                    let token = match which {
                        TransportTimer::PullPacer => (host as u64) << 32,
                        TransportTimer::Rto(f) => 1 << 60 | (host as u64) << 32 | f as u64,
                    };
                    ctx.schedule_at(at, netsim::NetEvent::Timer { token });
                }
            }
        }
        impl NetLogic for Pair {
            fn on_arrive(&mut self, fabric: &mut Fabric,
                         ctx: &mut EventContext<'_, netsim::NetEvent>,
                         node: usize, _port: usize, packet: Packet) {
                let a = self.hosts[node].on_packet(fabric, ctx, &mut self.tracker, packet);
                self.apply(node, a, ctx);
            }
            fn on_timer(&mut self, fabric: &mut Fabric,
                        ctx: &mut EventContext<'_, netsim::NetEvent>, token: u64) {
                if token == 0 {
                    if !self.started {
                        self.started = true;
                        let id = self.tracker.register(0, 1, self.size,
                            netsim::FlowClass::LowLatency, ctx.now());
                        let a = self.hosts[0].start_flow(fabric, ctx, id, 1, self.size);
                        self.apply(0, a, ctx);
                    }
                    return;
                }
                let host = (token >> 32 & 0xFFF_FFFF) as usize;
                let which = if token >> 60 == 1 {
                    TransportTimer::Rto((token & 0xFFFF_FFFF) as u32)
                } else {
                    TransportTimer::PullPacer
                };
                let a = self.hosts[host].on_timer(fabric, ctx, which);
                self.apply(host, a, ctx);
            }
        }

        let mut fabric = Fabric::new();
        let a = fabric.add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        let b = fabric.add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        fabric.connect(a, 0, b, 0);
        let _ = seed;
        let logic = Pair {
            hosts: vec![
                NdpHost::new(a, 0, NdpParams::paper_default()),
                NdpHost::new(b, 0, NdpParams::paper_default()),
            ],
            tracker: FlowTracker::new(),
            size,
            started: false,
        };
        let mut sim = Simulator::new(NetWorld::new(fabric, logic));
        sim.schedule_at(SimTime::ZERO, netsim::NetEvent::Timer { token: 0 });
        sim.run_until(SimTime::from_ms(50));
        prop_assert!(sim.world.logic.tracker.all_done());
        prop_assert!(sim.world.logic.tracker.get(0).received >= size);
    }

    /// PFC switches are lossless by construction: a randomized incast
    /// blasted through one switch with shallow pause thresholds loses no
    /// packet to any queue — every offered payload byte reaches the sink
    /// (byte conservation), with zero drops and zero trims.
    #[test]
    fn pfc_never_drops_under_incast(
        senders in 2usize..8,
        per_sender in 1u32..32,
        payload in 200u32..1400,
        seed in 0u64..1000,
    ) {
        use netsim::fabric::{Fabric, LinkSpec, QueueConfig};
        use netsim::policy::Pfc;
        use netsim::{NetLogic, NetWorld, Packet};
        use simkit::engine::EventContext;
        use simkit::SimTime;

        struct Incast {
            senders: usize,
            per_sender: u32,
            payload: u32,
            switch: usize,
            sink: usize,
            received: u64,
        }
        impl NetLogic for Incast {
            fn on_arrive(&mut self, fabric: &mut Fabric,
                         ctx: &mut EventContext<'_, netsim::NetEvent>,
                         node: usize, _port: usize, packet: Packet) {
                if node == self.switch {
                    // One downlink: the last port faces the sink.
                    fabric.send(ctx, self.switch, self.senders, packet);
                } else {
                    assert_eq!(node, self.sink);
                    self.received += packet.payload() as u64;
                }
            }
            fn on_timer(&mut self, fabric: &mut Fabric,
                        ctx: &mut EventContext<'_, netsim::NetEvent>, token: u64) {
                if token != 0 {
                    return;
                }
                for s in 0..self.senders {
                    for seq in 0..self.per_sender {
                        let size = netsim::HEADER_SIZE + self.payload;
                        let pkt = Packet::data(s as u32, s, self.sink, seq, size);
                        fabric.send(ctx, s, 0, pkt);
                    }
                }
            }
        }

        // Shallow queues + shallow pause threshold: incast pressure far
        // exceeds what any single queue could absorb without pausing.
        let cfg = QueueConfig::builder()
            .caps([12_000, 12_000, 24_000])
            .policy(Pfc { pause_bytes: 6_000, resume_bytes: 3_000 })
            .build();
        let mut fabric = Fabric::new();
        for _ in 0..senders {
            fabric.add_node(1, cfg, LinkSpec::paper_default());
        }
        let switch = fabric.add_node(senders + 1, cfg, LinkSpec::paper_default());
        let sink = fabric.add_node(1, cfg, LinkSpec::paper_default());
        for s in 0..senders {
            fabric.connect(s, 0, switch, s);
        }
        fabric.connect(switch, senders, sink, 0);
        let _ = seed;
        let logic = Incast { senders, per_sender, payload, switch, sink, received: 0 };
        let mut sim = NetWorld::new(fabric, logic).into_sim();
        sim.run_until(SimTime::from_ms(100));

        let offered = senders as u64 * per_sender as u64 * payload as u64;
        prop_assert_eq!(sim.world.logic.received, offered,
            "byte conservation violated");
        let c = &sim.world.fabric.counters;
        prop_assert_eq!(c.dropped, 0);
        prop_assert_eq!(c.trimmed, 0);
        prop_assert_eq!(c.dark_drops, 0);
    }
}

// Harness properties: the experiment runner's determinism contract
// (ordered collection, thread-invariance, seed derivation) that every
// committed golden baseline rests on.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sweep results are a pure function of (sweep, base seed): worker
    /// count and completion order are invisible. Per-point sleeps derived
    /// from the seed scramble which worker finishes first.
    #[test]
    fn runner_order_is_permutation_invariant(
        n in 1usize..40,
        threads in 2usize..9,
        seed in 0u64..1000,
    ) {
        let sweep = expt::Sweep::from_points((0..n).collect::<Vec<_>>());
        let serial = expt::Runner::new(1, seed).run(&sweep, |&p, ctx| (p, ctx.seed));
        let jittered = expt::Runner::new(threads, seed).run(&sweep, |&p, ctx| {
            std::thread::sleep(std::time::Duration::from_micros(ctx.seed % 200));
            (p, ctx.seed)
        });
        prop_assert_eq!(serial, jittered);
    }

    /// Replicate seeds are pairwise distinct across every (point, rep)
    /// pair and identical for any worker count.
    #[test]
    fn replicate_seeds_distinct_and_thread_stable(
        n in 1usize..20,
        reps in 1usize..6,
        base in 0u64..1000,
        threads in 2usize..9,
    ) {
        let sweep = expt::Sweep::from_points((0..n).collect::<Vec<_>>());
        let one = expt::Runner::new(1, base).run_replicated(&sweep, reps, |_, rc| rc.seed);
        let many = expt::Runner::new(threads, base).run_replicated(&sweep, reps, |_, rc| rc.seed);
        prop_assert_eq!(&one, &many);
        let flat: Vec<u64> = one.into_iter().flatten().collect();
        let distinct: std::collections::HashSet<u64> = flat.iter().copied().collect();
        prop_assert_eq!(distinct.len(), flat.len());
    }

    /// The JSON shard merge reproduces the unsharded rendering
    /// byte-for-byte for tables with a *variable number of rows per
    /// point* (the shape the legacy CSV merge scrambles), through a full
    /// serialize → parse → merge round trip, for any shard count.
    #[test]
    fn json_shard_merge_round_trips_multirow_tables(
        n in 1usize..24,
        shards in 1usize..6,
        seed in 0u64..500,
    ) {
        let sweep = expt::Sweep::from_points((0..n).collect::<Vec<_>>());
        let build = |shard: Option<(usize, usize)>| {
            let runner = expt::Runner::new(2, seed).with_shard(shard);
            let sref = expt::SweepRef {
                points: sweep.len(),
                owned: runner.owned_points(sweep.len()),
            };
            let mut t = expt::Table::new("points", &["i", "sub", "draw"]).for_sweep(&sref);
            // One constant row, computed identically in every shard.
            t.push(vec![
                expt::Cell::from("const"),
                expt::Cell::from(0u64),
                expt::Cell::from(seed),
            ]);
            let rows = runner.run(&sweep, |&p, ctx| {
                let mut rng = ctx.rng();
                // 0..=2 rows depending on the seed: exercises points
                // with zero rows and points with several.
                let k = (rng.next_u64() % 3) as usize;
                (0..k)
                    .map(|sub| {
                        vec![
                            expt::Cell::from(p),
                            expt::Cell::from(sub),
                            expt::Cell::from(rng.next_u64()),
                        ]
                    })
                    .collect::<Vec<_>>()
            });
            for (point_rows, &p) in rows.into_iter().zip(&sref.owned) {
                t.extend_indexed(p, point_rows);
            }
            let meta = expt::RunMeta {
                driver: "prop".into(),
                scale: "quick".into(),
                seed,
                replicates: 1,
                k: None,
                shard,
            };
            (t.to_csv(), expt::output::table_json(&t, &meta))
        };
        let (unsharded_csv, _) = build(None);
        let docs: Vec<expt::TableDoc> = (0..shards)
            .map(|i| {
                let (_, json) = build(Some((i, shards)));
                expt::TableDoc::parse(&json).unwrap()
            })
            .collect();
        let merged = expt::merge_shard_docs(&docs).unwrap();
        prop_assert_eq!(merged.to_csv(), unsharded_csv);
    }
}

/// World for the timing-wheel ordering property: logs every pop and,
/// when a spawn-tagged event fires, schedules the next follow-up —
/// exercising direct inserts into already-cascaded windows, the one
/// place a wheel can break FIFO order.
struct PopLog {
    log: Vec<(u64, u32)>,
    followups: Vec<(u32, u64)>,
}

impl simkit::EventHandler for PopLog {
    type Event = u32;
    fn handle_event(&mut self, ev: u32, ctx: &mut simkit::EventContext<'_, u32>) {
        self.log.push((ctx.now().as_ns(), ev));
        if ev.is_multiple_of(4) {
            if let Some((id, delta)) = self.followups.pop() {
                ctx.schedule_in(simkit::SimTime::from_ns(delta), id);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The timing-wheel scheduler pops events in exactly the order the
    /// old binary-heap engine did: ascending `(time, seq)`, FIFO for
    /// equal timestamps. The schedule mixes near and far-future
    /// timestamps (crossing every wheel level), forced equal-time ties,
    /// cancellations, and in-handler follow-up scheduling; the oracle
    /// is a literal `BinaryHeap` over `(time, seq)` keys fed the same
    /// operation stream.
    #[test]
    fn timing_wheel_matches_heap_order(
        raw in prop::collection::vec(0u64..(1u64 << 62), 1..48),
        seed in 0u64..10_000,
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut rng = SimRng::new(seed);
        // Force equal-time ties so FIFO tie-breaking is actually hit.
        let mut times = raw.clone();
        for i in 1..times.len() {
            if rng.chance(0.3) {
                times[i] = times[rng.index(i)];
            }
        }
        let cancels: Vec<bool> = times.iter().map(|_| rng.chance(0.25)).collect();
        let followups: Vec<(u32, u64)> = (0..times.len())
            .map(|j| (1000 + j as u32, rng.next_u64() % (1 << 20)))
            .collect();

        // Reference: the old engine's semantics, literally a heap keyed
        // by (time, seq). Sequence numbers are consumed per schedule
        // call, cancelled or not, exactly as the engine consumes them.
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, (&t, &c)) in times.iter().zip(&cancels).enumerate() {
            if !c {
                heap.push(Reverse((t, seq, i as u32)));
            }
            seq += 1;
        }
        let mut model_followups = followups.clone();
        let mut expected: Vec<(u64, u32)> = Vec::new();
        while let Some(Reverse((t, _, id))) = heap.pop() {
            expected.push((t, id));
            if id.is_multiple_of(4) {
                if let Some((nid, delta)) = model_followups.pop() {
                    heap.push(Reverse((t + delta, seq, nid)));
                    seq += 1;
                }
            }
        }

        // Real engine, same stream.
        let mut sim = simkit::Simulator::new(PopLog {
            log: Vec::new(),
            followups,
        });
        for (i, (&t, &c)) in times.iter().zip(&cancels).enumerate() {
            let at = simkit::SimTime::from_ns(t);
            if c {
                let tok = sim.schedule_at_cancellable(at, i as u32);
                prop_assert!(sim.cancel(tok));
            } else {
                sim.schedule_at(at, i as u32);
            }
        }
        sim.run();

        prop_assert_eq!(&sim.world.log, &expected);
        prop_assert_eq!(sim.pending(), 0);
        prop_assert_eq!(sim.events_processed(), expected.len() as u64);
    }
}

/// The seed max-concurrent-flow implementation, kept verbatim as the
/// oracle for the rewritten `flowsim::McfSolver`: per-call allocations,
/// full-tree Dijkstra (no early exit), per-call edge-offset table. The
/// optimized exact path must reproduce its λ **bit for bit**.
mod reference_mcf {
    use flowsim::models::Demand;
    use topo::graph::Graph;

    fn dijkstra(
        g: &Graph,
        costs: &[f64],
        edge_offset: &[usize],
        src: usize,
    ) -> (Vec<f64>, Vec<(usize, usize)>) {
        let n = g.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![(usize::MAX, usize::MAX); n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[src] = 0.0;
        heap.push((std::cmp::Reverse(0f64.to_bits()), src));
        while let Some((std::cmp::Reverse(dv), v)) = heap.pop() {
            if f64::from_bits(dv) > dist[v] {
                continue;
            }
            for (i, e) in g.edges(v).iter().enumerate() {
                let nd = dist[v] + costs[edge_offset[v] + i];
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = (v, i);
                    heap.push((std::cmp::Reverse(nd.to_bits()), e.to));
                }
            }
        }
        (dist, prev)
    }

    pub fn max_concurrent_flow(
        g: &Graph,
        tor_of_rack: &[usize],
        demands: &[Demand],
        link_rate: f64,
        host_cap: f64,
        phases: usize,
    ) -> f64 {
        let n = g.len();
        let mut edge_offset = vec![0usize; n];
        let mut total_edges = 0;
        for (v, off) in edge_offset.iter_mut().enumerate() {
            *off = total_edges;
            total_edges += g.degree(v);
        }
        if total_edges == 0 || demands.is_empty() {
            return 0.0;
        }

        const EPS: f64 = 0.07;
        let mut cost = vec![1.0 / link_rate; total_edges];
        let mut load = vec![0.0f64; total_edges];

        for _ in 0..phases {
            for d in demands {
                if d.amount <= 0.0 || d.src == d.dst {
                    continue;
                }
                let s = tor_of_rack[d.src];
                let t = tor_of_rack[d.dst];
                let (dist, prev) = dijkstra(g, &cost, &edge_offset, s);
                if !dist[t].is_finite() {
                    continue;
                }
                let mut v = t;
                while v != s {
                    let (pv, i) = prev[v];
                    let eid = edge_offset[pv] + i;
                    load[eid] += d.amount;
                    cost[eid] *= 1.0 + EPS * d.amount / link_rate;
                    v = pv;
                }
            }
        }

        let worst = load.iter().map(|&l| l / link_rate).fold(0.0f64, f64::max);
        let mut lambda = if worst > 0.0 {
            phases as f64 / worst
        } else {
            f64::INFINITY
        };
        let racks = tor_of_rack.len();
        let mut out = vec![0.0; racks];
        let mut inn = vec![0.0; racks];
        for d in demands {
            out[d.src] += d.amount;
            inn[d.dst] += d.amount;
        }
        for r in 0..racks {
            if out[r] > 0.0 {
                lambda = lambda.min(host_cap / out[r]);
            }
            if inn[r] > 0.0 {
                lambda = lambda.min(host_cap / inn[r]);
            }
        }
        lambda.min(1.0)
    }
}

/// A random MCF instance: multigraph (mixed full-duplex links and
/// one-way edges, possibly disconnected), a random rack→ToR mapping,
/// and a demand list that includes self-demands and zero amounts (both
/// skipped by the solver's routing loop but counted by its host-cap
/// bound).
fn random_mcf_instance(
    n: usize,
    links: usize,
    ndemands: usize,
    seed: u64,
) -> (topo::graph::Graph, Vec<usize>, Vec<flowsim::models::Demand>) {
    let mut rng = SimRng::new(seed);
    let mut g = topo::graph::Graph::new(n);
    for _ in 0..links {
        let a = rng.index(n);
        let b = rng.index(n);
        if a == b {
            continue;
        }
        if rng.chance(0.8) {
            g.add_link(a, b, rng.index(4));
        } else {
            g.add_edge(a, b, rng.index(4));
        }
    }
    let tor: Vec<usize> = (0..n)
        .map(|r| if rng.chance(0.85) { r } else { rng.index(n) })
        .collect();
    let demands: Vec<flowsim::models::Demand> = (0..ndemands)
        .map(|_| {
            let src = rng.index(n);
            let dst = if rng.chance(0.1) { src } else { rng.index(n) };
            let amount = if rng.chance(0.1) {
                0.0
            } else {
                0.5 + 49.5 * rng.f64()
            };
            flowsim::models::Demand { src, dst, amount }
        })
        .collect();
    (g, tor, demands)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The rewritten `McfSolver` (CSR adjacency, generation-stamped
    /// scratch, early-exit Dijkstra, source-bucketed iteration) produces
    /// λ **bit-identical** to the seed implementation over random
    /// graphs and demand sets — including reused solver instances, which
    /// must not leak state between solves.
    #[test]
    fn mcf_matches_reference(
        n in 2usize..28,
        links in 1usize..64,
        ndemands in 1usize..16,
        phases in 1usize..24,
        seed in 0u64..10_000,
    ) {
        let (g, tor, demands) = random_mcf_instance(n, links, ndemands, seed);
        let link_rate = if seed % 2 == 0 { 10.0 } else { 2.5 };
        let host_cap = 1.0 + (seed % 97) as f64;
        let want = reference_mcf::max_concurrent_flow(
            &g, &tor, &demands, link_rate, host_cap, phases);
        let got = flowsim::max_concurrent_flow(
            &g, &tor, &demands, link_rate, host_cap, phases).lambda;
        prop_assert_eq!(got.to_bits(), want.to_bits(), "got {} want {}", got, want);
        // A reused solver instance reproduces the same bits.
        let mut solver = flowsim::McfSolver::new(&g);
        for _ in 0..2 {
            let again = solver.solve(&tor, &demands, link_rate, host_cap, phases).lambda;
            prop_assert_eq!(again.to_bits(), want.to_bits());
        }
    }

    /// Warm-started solves agree with cold solves: chaining through an
    /// intermediate state at any split point yields λ within 1e-6 of
    /// the from-scratch solve (the implementation is in fact exact —
    /// asserted via bit equality — and falls back to a cold solve on
    /// any fingerprint mismatch, checked with a perturbed demand set).
    #[test]
    fn mcf_warm_matches_cold(
        n in 2usize..24,
        links in 1usize..48,
        ndemands in 1usize..12,
        phases in 2usize..20,
        split_frac in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let (g, tor, demands) = random_mcf_instance(n, links, ndemands, seed);
        let (link_rate, host_cap) = (10.0, 40.0);
        let mut solver = flowsim::McfSolver::new(&g);
        let cold = solver.solve(&tor, &demands, link_rate, host_cap, phases).lambda;
        let split = ((phases as f64 * split_frac) as usize).min(phases);
        let (_, state) = solver.solve_warm(
            None, &tor, &demands, link_rate, host_cap, split);
        let (warm, _) = solver.solve_warm(
            Some(&state), &tor, &demands, link_rate, host_cap, phases);
        prop_assert!((warm.lambda - cold).abs() <= 1e-6,
            "warm {} vs cold {}", warm.lambda, cold);
        prop_assert_eq!(warm.lambda.to_bits(), cold.to_bits());
        // A state from a *different* problem never contaminates the
        // solve: fingerprint mismatch falls back to cold.
        let mut perturbed = demands.clone();
        perturbed[0].amount += 1.0;
        let (fallback, _) = solver.solve_warm(
            Some(&state), &tor, &perturbed, link_rate, host_cap, phases);
        let cold2 = solver.solve(&tor, &perturbed, link_rate, host_cap, phases).lambda;
        prop_assert_eq!(fallback.lambda.to_bits(), cold2.to_bits());
    }
}
