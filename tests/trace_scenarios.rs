//! Golden trace regression: the JSON-lines trace of the committed
//! `scenarios/tiny_incast.toml` scenario must match the blessed file
//! under `goldens/traces/tiny_incast/` byte-for-byte.
//!
//! The trace is a total ordering of every per-link event in the run —
//! enqueues, transmissions, trims, ACKs, timers, with timestamps — so
//! this is the strictest behavioral pin in the suite: any reordering or
//! retiming anywhere in netsim/transport moves some line. After an
//! *intended* change, re-bless with
//! `OPERA_BLESS=1 cargo test -q --test trace_scenarios` and commit the
//! diff alongside, exactly like the figure goldens.

use std::path::{Path, PathBuf};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn bless() -> bool {
    matches!(
        std::env::var("OPERA_BLESS").ok().as_deref(),
        Some("1") | Some("true")
    )
}

#[test]
fn tiny_incast_trace_matches_golden() {
    let sc = expt::scenario::Scenario::load(&repo_root().join("scenarios/tiny_incast.toml"))
        .expect("parse committed scenario");
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("trace-golden");
    let _ = std::fs::remove_dir_all(&out);
    let report = bench::scenario::run_scenario(&sc, &out).expect("scenario runs");

    // The run itself must self-validate: both sinks, reconciled.
    let v = report.validation.expect("tiny_incast enables both sinks");
    assert!(v.jsonl_tx > 0, "traced run produced no transmissions");
    assert_eq!(v.jsonl_tx, v.pcapng_packets);

    let fresh_path = report.trace_jsonl.expect("jsonl sink enabled");
    let fresh = std::fs::read_to_string(&fresh_path).unwrap();
    let golden_path = repo_root().join("goldens/traces/tiny_incast/trace.jsonl");
    if bless() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &fresh).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nbless with `OPERA_BLESS=1 cargo test -q --test trace_scenarios`",
            golden_path.display()
        )
    });
    if fresh != committed {
        // Name the first diverging line, not a 200-line dump.
        for (i, (f, c)) in fresh.lines().zip(committed.lines()).enumerate() {
            assert_eq!(
                f,
                c,
                "trace diverges from golden at line {} — if intended, re-bless with \
                 OPERA_BLESS=1 and commit the goldens/traces diff",
                i + 1
            );
        }
        panic!(
            "trace length changed: fresh {} line(s), golden {} line(s) — if intended, \
             re-bless with OPERA_BLESS=1 and commit the goldens/traces diff",
            fresh.lines().count(),
            committed.lines().count()
        );
    }
}

/// Tracing must be pure observation: running the same scenario with the
/// trace table stripped yields identical metrics rows.
#[test]
fn tracing_does_not_perturb_metrics() {
    let mut sc = expt::scenario::Scenario::load(&repo_root().join("scenarios/tiny_incast.toml"))
        .expect("parse committed scenario");
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("trace-perturb");
    let _ = std::fs::remove_dir_all(&out);
    let traced = bench::scenario::run_scenario(&sc, &out.join("on")).unwrap();
    sc.trace = Default::default();
    let plain = bench::scenario::run_scenario(&sc, &out.join("off")).unwrap();

    let traced_csv = std::fs::read_to_string(&traced.csv).unwrap();
    let plain_csv = std::fs::read_to_string(&plain.csv).unwrap();
    assert_eq!(
        traced_csv, plain_csv,
        "enabling trace sinks changed simulation results"
    );
}
