//! Workspace smoke test: the exact flow of the doc example in
//! `crates/opera/src/lib.rs` must keep working, since it is the first
//! thing a new user runs. Kept as a named test (not only a doc-test) so
//! a failure is visible in plain `cargo test` output and easy to bisect.

use opera::{opera_net, OperaNetConfig};
use simkit::SimTime;
use workloads::FlowSpec;

#[test]
fn small_test_network_runs_to_completion() {
    let cfg = OperaNetConfig::small_test();
    let flows = vec![FlowSpec {
        src: 1,
        dst: 30,
        size: 20_000,
        start: SimTime::ZERO,
    }];
    let mut sim = opera_net::build(cfg, flows);
    sim.run_until(SimTime::from_ms(5));

    let tracker = sim.world.logic.tracker();
    assert!(tracker.all_done(), "flow did not complete within 5 ms");
    let fct = tracker.get(0).fct().expect("flow completed");
    assert!(
        fct < SimTime::from_us(100),
        "low-latency FCT regressed: {fct}"
    );
    assert!(sim.events_processed() > 0);
}
