//! Property test: the pcapng writer and the validating reader are exact
//! inverses over random event streams — every interface (including
//! links that never carry a packet), every packet's timestamp, link,
//! and capsule metadata survive the round trip byte-exactly.
//!
//! Timestamps are drawn near the `2^32` nanosecond boundary on purpose:
//! pcapng splits the 64-bit timestamp into high/low 32-bit words, so an
//! off-by-one in the split shows up exactly there.

use netsim::pcapng::{self, PcapngWriter};
use netsim::trace::PacketMeta;
use netsim::Priority;
use proptest::prelude::*;

/// Decode one random `u64` into a packet description: link index,
/// timestamp increment, and capsule fields, all bit-sliced so a single
/// `vec(any::<u64>(), ..)` strategy drives the whole stream.
fn packet_of(bits: u64, links: usize) -> (usize, u64, PacketMeta) {
    let link = (bits & 0xF) as usize % links;
    let dt = (bits >> 4) & 0xFFFF; // 0..65536 ns between packets
    let kind = match (bits >> 20) & 0x7 {
        0 => "data",
        1 => "ack",
        2 => "nack",
        3 => "pull",
        4 => "bulk",
        5 => "bulk_nack",
        _ => "hello",
    };
    let prio = match (bits >> 23) & 0x3 {
        0 => Priority::Control,
        1 => Priority::LowLatency,
        _ => Priority::Bulk,
    };
    let meta = PacketMeta {
        flow: (bits >> 25) as u32 & 0xFFFF,
        src: ((bits >> 41) & 0xFF) as usize,
        dst: ((bits >> 49) & 0xFF) as usize,
        seq: ((bits >> 57) & 0x7F) as u32,
        size: 64 + ((bits >> 33) & 0xFF) as u32,
        prio,
        kind,
        trimmed: (bits >> 30) & 1 == 1,
        ce: (bits >> 31) & 1 == 1,
    };
    (link, dt, meta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Write a random stream (random links, kinds, flags, sizes; strictly
    /// monotone timestamps straddling 2^32 ns), read it back, and check
    /// every field — plus the zero-packet links, which must still appear
    /// as interfaces with a zero count.
    #[test]
    fn writer_reader_roundtrip(
        stream in prop::collection::vec(0u64..u64::MAX, 0..200),
        links in 1usize..12,
        idle_links in 0usize..4,
        start_lo in 0u64..200_000,
        near_boundary in 0usize..2,
    ) {
        let mut w = PcapngWriter::new(Vec::new()).unwrap();
        for i in 0..links + idle_links {
            // node = link index, port = low 2 bits, mirroring real ids.
            let iface = w.register_link(i, i & 0x3).unwrap();
            prop_assert_eq!(iface as usize, i);
        }

        // Start just below 2^32 ns when asked, so streams cross the
        // low-word wraparound mid-capture.
        let mut t = if near_boundary == 1 {
            (1u64 << 32) - start_lo.min(1 << 20)
        } else {
            start_lo
        };
        let mut expect = Vec::new();
        for &bits in &stream {
            let (link, dt, meta) = packet_of(bits, links);
            w.packet(t, link, link & 0x3, &meta).unwrap();
            expect.push((t, link as u32, meta));
            t += 1 + dt; // strictly monotone
        }
        w.finish().unwrap();
        let bytes = w.into_inner();

        let file = pcapng::read(&bytes).unwrap_or_else(|e| panic!("reader rejected own writer: {e}"));
        prop_assert_eq!(file.ifaces.len(), links + idle_links);
        for (i, (node, port, name)) in file.ifaces.iter().enumerate() {
            prop_assert_eq!(*node, i);
            prop_assert_eq!(*port, i & 0x3);
            prop_assert_eq!(name.as_str(), &format!("n{i}.p{}", i & 0x3));
        }
        prop_assert_eq!(file.packets.len(), expect.len());
        for (got, (t, iface, meta)) in file.packets.iter().zip(&expect) {
            prop_assert_eq!(got.t_ns, *t);
            prop_assert_eq!(got.iface, *iface);
            prop_assert_eq!(got.meta.flow, meta.flow);
            prop_assert_eq!(got.meta.src, meta.src);
            prop_assert_eq!(got.meta.dst, meta.dst);
            prop_assert_eq!(got.meta.seq, meta.seq);
            prop_assert_eq!(got.meta.size, meta.size);
            prop_assert_eq!(got.meta.prio, meta.prio);
            prop_assert_eq!(got.meta.kind, meta.kind);
            prop_assert_eq!(got.meta.trimmed, meta.trimmed);
            prop_assert_eq!(got.meta.ce, meta.ce);
        }

        // Per-link counts: idle links report zero, busy links match.
        let counts = file.counts_per_link();
        for &idle in counts.iter().skip(links).take(idle_links) {
            prop_assert_eq!(idle, 0);
        }
        let per_link: Vec<u64> = (0..links)
            .map(|l| expect.iter().filter(|(_, i, _)| *i as usize == l).count() as u64)
            .collect();
        prop_assert_eq!(&counts[..links], &per_link[..]);
    }

    /// Flipping any single byte of the SHB byte-order magic or version
    /// words makes the reader fail with an error, never a wrong parse.
    /// (Bytes 16..24, the section length, are legitimately ignored: the
    /// writer emits the "unknown length" sentinel.)
    #[test]
    fn header_corruption_is_rejected(offset in 8usize..16, delta in 1u32..256) {
        let mut w = PcapngWriter::new(Vec::new()).unwrap();
        w.register_link(0, 0).unwrap();
        let meta = PacketMeta {
            flow: 1, src: 0, dst: 1, seq: 0, size: 100,
            prio: Priority::LowLatency, kind: "data", trimmed: false, ce: false,
        };
        w.packet(5, 0, 0, &meta).unwrap();
        w.finish().unwrap();
        let mut bytes = w.into_inner();
        bytes[offset] = bytes[offset].wrapping_add(delta as u8);
        prop_assert!(pcapng::read(&bytes).is_err());
    }
}
