//! Cross-crate integration tests: whole-system behaviours spanning the
//! topology generator, packet fabric, transports, and network models.

use opera::{opera_net, static_net, OperaNetConfig, RotorMode, StaticNetConfig};
use simkit::{SimRng, SimTime};
use workloads::dists::{FlowSizeDist, Workload};
use workloads::gen::{PoissonGen, ScenarioGen};
use workloads::FlowSpec;

/// At light load every flow on every network completes, and Opera's
/// low-latency FCTs are in the same range as the static networks'.
#[test]
fn light_load_equivalence() {
    let window = SimTime::from_ms(2);
    let horizon = SimTime::from_ms(120);

    // Hadoop mix at 5% load on 32 hosts.
    let flows = |hosts: usize| {
        let mut g = PoissonGen::new(FlowSizeDist::of(Workload::Hadoop), hosts, 10.0, 0.05, 5);
        g.flows_until(window)
            .into_iter()
            .filter(|f| f.size < 400_000)
            .collect::<Vec<_>>()
    };

    let mut sim = opera_net::build(OperaNetConfig::small_test(), flows(32));
    sim.run_until(horizon);
    let t = sim.world.logic.tracker();
    assert!(t.all_done(), "opera: {}/{}", t.completed(), t.len());
    let opera_avg = avg_fct_us(t);

    let mut sim = static_net::build(StaticNetConfig::small_expander(), flows(32));
    sim.run_until(horizon);
    let t = sim.world.logic.tracker();
    assert!(t.all_done(), "expander: {}/{}", t.completed(), t.len());
    let exp_avg = avg_fct_us(t);

    // Same order of magnitude (paper: equivalent FCTs at low load).
    assert!(
        opera_avg < 5.0 * exp_avg && exp_avg < 5.0 * opera_avg,
        "opera {opera_avg}us vs expander {exp_avg}us"
    );
}

fn avg_fct_us(t: &netsim::FlowTracker) -> f64 {
    let v: Vec<f64> = t
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .map(|x| x.as_us_f64())
        .collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// The full stack is deterministic: identical seeds give identical FCTs.
#[test]
fn full_stack_deterministic() {
    let run = || {
        let mut rng = SimRng::new(77);
        let mut flows = Vec::new();
        for _ in 0..30 {
            let src = rng.index(32);
            let mut dst = rng.index(31);
            if dst >= src {
                dst += 1;
            }
            flows.push(FlowSpec {
                src,
                dst,
                size: 1000 + rng.below(800_000),
                start: SimTime::from_us(rng.below(400)),
            });
        }
        let mut sim = opera_net::build(OperaNetConfig::small_test(), flows);
        sim.run_until(SimTime::from_ms(80));
        sim.world
            .logic
            .tracker()
            .flows()
            .iter()
            .map(|f| f.fct().map(|t| t.as_ns()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Bulk traffic pays (nearly) zero bandwidth tax: the bytes put on inter-
/// rack links by a bulk flow are within a few percent of the flow size,
/// while a low-latency flow pays the multi-hop tax.
#[test]
fn bulk_traffic_is_tax_free() {
    // One 2MB bulk flow: packets traverse exactly one inter-rack circuit,
    // so ToR-to-ToR deliveries ≈ packet count, not path_len × packets.
    let mut cfg = OperaNetConfig::small_test();
    cfg.bulk_threshold = 0;
    let flows = vec![FlowSpec {
        src: 0,
        dst: 31,
        size: 2_000_000,
        start: SimTime::ZERO,
    }];
    let mut sim = opera_net::build(cfg, flows);
    // Meter only data-plane packets: silence the hello protocol.
    sim.world.logic.set_hello_enabled(false);
    sim.run_until(SimTime::from_ms(60));
    let t = sim.world.logic.tracker();
    assert!(t.all_done());
    // Each data packet is delivered: host->ToR, ToR->ToR (possibly 2 for
    // VLB), ToR->host = 3..4 fabric deliveries. A taxed path would be 5+.
    let packets = 2_000_000 / 1436 + 1;
    let deliveries = sim.world.fabric.counters.delivered;
    let per_packet = deliveries as f64 / packets as f64;
    assert!(
        per_packet < 4.5,
        "bulk bytes look taxed: {per_packet:.2} deliveries/packet"
    );
}

/// RotorNet (non-hybrid) completes the same shuffle as Opera — the bulk
/// plane is shared machinery — but strands short flows for circuit waits.
#[test]
fn rotornet_shares_bulk_plane() {
    let shuffle = ScenarioGen::shuffle(16, 50_000, SimTime::ZERO);
    for mode in [RotorMode::Opera, RotorMode::RotorNonHybrid] {
        let mut cfg = OperaNetConfig::small_test();
        cfg.params.racks = 4;
        cfg.mode = mode;
        cfg.bulk_threshold = 0;
        let mut sim = opera_net::build(cfg, shuffle.clone());
        sim.run_until(SimTime::from_ms(120));
        let t = sim.world.logic.tracker();
        assert!(
            t.all_done(),
            "{mode:?}: {}/{} done, counters {:?}",
            t.completed(),
            t.len(),
            sim.world.logic.counters
        );
    }
}

/// Clos, expander, and Opera all deliver a Websearch-style flow mix with
/// zero unexplained packet loss.
#[test]
fn no_unexplained_loss_across_networks() {
    let mk_flows = |hosts: usize| {
        let mut g = PoissonGen::new(FlowSizeDist::of(Workload::Websearch), hosts, 10.0, 0.03, 9);
        g.flows_until(SimTime::from_ms(1))
    };
    // Opera
    let mut cfg = OperaNetConfig::small_test();
    cfg.bulk_threshold = u64::MAX;
    let mut sim = opera_net::build(cfg, mk_flows(32));
    sim.run_until(SimTime::from_ms(150));
    assert!(sim.world.logic.tracker().all_done());
    assert_eq!(sim.world.logic.counters.hop_limit_drops, 0);

    // Static nets
    for cfg in [
        StaticNetConfig::small_expander(),
        StaticNetConfig::paper_clos_648(),
    ] {
        let hosts = match &cfg.kind {
            opera::StaticTopologyKind::Expander(p) => p.racks * p.hosts_per_rack,
            opera::StaticTopologyKind::FoldedClos(p) => p.hosts(),
        };
        let mut sim = static_net::build(cfg, mk_flows(hosts.min(64)));
        sim.run_until(SimTime::from_ms(150));
        let t = sim.world.logic.tracker();
        assert!(t.all_done(), "{}/{}", t.completed(), t.len());
        assert_eq!(sim.world.logic.routing_drops, 0);
    }
}

/// NDP's trimming + NACK + RTO machinery recovers from random physical
/// loss: flows complete even when 2% of all transmissions are corrupted.
#[test]
fn ndp_survives_random_loss() {
    let mut cfg = OperaNetConfig::small_test();
    cfg.bulk_threshold = u64::MAX; // all NDP
    let mut flows = Vec::new();
    let mut rng = SimRng::new(31);
    for _ in 0..15 {
        let src = rng.index(32);
        let mut dst = rng.index(31);
        if dst >= src {
            dst += 1;
        }
        flows.push(FlowSpec {
            src,
            dst,
            size: 40_000,
            start: SimTime::from_us(rng.below(300)),
        });
    }
    let mut sim = opera_net::build(cfg, flows);
    sim.world.fabric.set_random_loss(0.02, 5);
    sim.run_until(SimTime::from_ms(150));
    let t = sim.world.logic.tracker();
    assert!(
        t.all_done(),
        "flows lost to corruption: {}/{}",
        t.completed(),
        t.len()
    );
}

/// The flow-level Opera model and the packet simulation agree on the
/// direction of the headline result: Opera's bulk plane beats its own
/// low-latency plane for all-to-all traffic.
#[test]
fn flow_model_and_packet_sim_agree_on_shuffle_win() {
    use flowsim::opera_model;
    use topo::opera::{OperaParams, OperaTopology};

    let topo = OperaTopology::generate(
        OperaParams {
            racks: 24,
            uplinks: 4,
            hosts_per_rack: 4,
            groups: 1,
        },
        3,
    );
    let demands = ScenarioGen::all_to_all_demands(24, 4, 10.0, 1.0);
    let direct = opera_model(&topo, &demands, 10.0, 0.98, true).throughput_fraction();
    // Indirect (expander) service of the same demand pays ~3x tax with
    // only u-1 usable uplinks: bounded by (u-1)/d / avg_path.
    let taxed_bound = 3.0 / (4.0 * 2.2);
    assert!(
        direct > taxed_bound,
        "direct {direct:.3} should beat taxed bound {taxed_bound:.3}"
    );
}
