//! Physical-sanity invariants of the simulation layers the golden
//! baselines are built on. A golden diff says *what* moved; these say a
//! result was never physically meaningful in the first place:
//!
//! * packet-level (`netsim`/`transport` via `opera::opera_net`): FCTs
//!   are non-negative, finite, and no faster than line rate; received
//!   bytes are conserved (never exceed the flow size, exactly reach it
//!   on completion);
//! * fluid-level (`flowsim`): allocated rates are non-negative, never
//!   exceed the offered demand, and aggregate throughput never exceeds
//!   what the line rate admits.

use proptest::prelude::*;
use simkit::SimTime;
use topo::opera::{OperaParams, OperaTopology};
use workloads::dists::{FlowSizeDist, Workload};
use workloads::gen::PoissonGen;

/// Line rate of every simulated link (Gb/s = bits/ns).
const GBPS: f64 = 10.0;

#[test]
fn packet_sim_fcts_are_physical() {
    let cfg = opera::OperaNetConfig::small_test();
    let hosts = cfg.hosts();
    let mut gen = PoissonGen::new(FlowSizeDist::of(Workload::Websearch), hosts, GBPS, 0.2, 7);
    // A Poisson batch for variety plus fixed small flows so at least
    // some completions are guaranteed inside the horizon.
    let mut flows = gen.flows_until(SimTime::from_ms(2));
    for i in 0..12 {
        flows.push(workloads::FlowSpec {
            src: i % hosts,
            dst: (i + hosts / 2) % hosts,
            size: 20_000 + 10_000 * i as u64,
            start: SimTime::from_us(5 * i as u64),
        });
    }
    let mut sim = opera::opera_net::build(cfg, flows);
    sim.run_until(SimTime::from_ms(200));
    let tracker = sim.world.logic.tracker();
    assert!(tracker.completed() > 0, "no flow completed");
    for f in tracker.flows() {
        // Byte conservation: delivered payload never exceeds the flow
        // size, and completion means exactly the full size arrived.
        assert!(f.received <= f.size, "over-delivered: {f:?}");
        match f.fct() {
            Some(fct) => {
                assert_eq!(f.received, f.size, "finished short: {f:?}");
                let ns = fct.as_ns() as f64;
                assert!(ns.is_finite() && ns >= 0.0, "unphysical FCT: {f:?}");
                // Throughput <= line rate: a flow cannot finish faster
                // than its payload serializes at 10 Gb/s on one link.
                let min_ns = f.size as f64 * 8.0 / GBPS;
                assert!(
                    ns >= min_ns,
                    "flow beat line rate: {ns} ns < {min_ns} ns for {f:?}"
                );
            }
            None => assert!(f.finish.is_none()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fluid allocations are conservative for arbitrary demand matrices:
    /// every demand gets a non-negative rate no larger than it asked
    /// for, and nothing is created out of thin air in aggregate.
    #[test]
    fn fluid_model_conserves_flow(
        nflows in 1usize..24,
        racks_mult in 2usize..5,
        amount in 0.5f64..40.0,
        seed in 0u64..500,
    ) {
        let u = 4;
        let params = OperaParams {
            racks: u * racks_mult,
            uplinks: u,
            hosts_per_rack: 2,
            groups: 1,
        };
        let topo = OperaTopology::generate(params, seed);
        let mut rng = simkit::SimRng::new(seed ^ 0xF00D);
        let n = topo.racks();
        let demands: Vec<flowsim::Demand> = (0..nflows)
            .map(|_| {
                let src = rng.index(n);
                let dst = (src + 1 + rng.index(n - 1)) % n;
                flowsim::Demand { src, dst, amount }
            })
            .collect();
        for allow_vlb in [false, true] {
            let r = flowsim::opera_model(&topo, &demands, GBPS, 1.0, allow_vlb);
            prop_assert_eq!(r.rates.len(), demands.len());
            let mut delivered = 0.0;
            let mut offered = 0.0;
            for (rate, d) in r.rates.iter().zip(&demands) {
                prop_assert!(rate.is_finite() && *rate >= 0.0, "negative rate {rate}");
                prop_assert!(*rate <= d.amount + 1e-9, "rate {rate} > demand {}", d.amount);
                delivered += rate;
                offered += d.amount;
            }
            // Aggregate conservation and the line-rate ceiling: each
            // rack's hosts inject at most hosts_per_rack * line rate.
            prop_assert!(delivered <= offered + 1e-9);
            prop_assert!(r.throughput_fraction() <= 1.0 + 1e-9);
            prop_assert!(delivered <= (n * 2) as f64 * GBPS + 1e-9);
        }
    }

    /// The same conservation bounds hold for the static-network models
    /// (ECMP / disjoint-path routing on the expander graph).
    #[test]
    fn static_model_respects_line_rate(
        nflows in 1usize..16,
        amount in 0.5f64..30.0,
        seed in 0u64..500,
    ) {
        use topo::expander::{ExpanderParams, ExpanderTopology};
        let exp = ExpanderTopology::generate(
            ExpanderParams {
                racks: 16,
                uplinks: 4,
                hosts_per_rack: 3,
            },
            seed,
        );
        let mut rng = simkit::SimRng::new(seed ^ 0xBEEF);
        let n = exp.racks();
        let demands: Vec<flowsim::Demand> = (0..nflows)
            .map(|_| {
                let src = rng.index(n);
                let dst = (src + 1 + rng.index(n - 1)) % n;
                flowsim::Demand { src, dst, amount }
            })
            .collect();
        let tors: Vec<usize> = (0..n).collect();
        let r = flowsim::expander_model(exp.graph(), &tors, &demands, GBPS, 3.0 * GBPS);
        let delivered: f64 = r.rates.iter().sum();
        let offered: f64 = demands.iter().map(|d| d.amount).sum();
        for (rate, d) in r.rates.iter().zip(&demands) {
            prop_assert!(rate.is_finite() && *rate >= 0.0);
            prop_assert!(*rate <= d.amount + 1e-9);
        }
        prop_assert!(delivered <= offered + 1e-9);
        prop_assert!(r.min_fraction() >= 0.0 && r.min_fraction() <= 1.0 + 1e-9);
    }
}
