//! Tier-1 acceptance tests for the sweep orchestrator: merged sharded
//! output must be byte-identical to unsharded `--threads 1` runs for
//! **every** driver, and an injected dropped shard must fail with the
//! named missing-point-index error.

use bench::backend::LocalBackend;
use bench::figures;
use expt::orchestrate::{validate_dir, OrchestrateError, Orchestrator, Plan};
use expt::output::MergeError;
use expt::{Ctx, ExptArgs, Scale, Table};

fn quick_args() -> ExptArgs {
    ExptArgs {
        scale: Scale::Quick,
        no_write: true,
        ..ExptArgs::default()
    }
}

/// The acceptance bar from the issue: `opera_orchestrate --drivers all
/// --shards 4 --quick` produces CSVs byte-identical to unsharded
/// `--threads 1` runs for all 20 drivers.
#[test]
fn orchestrated_4_shard_quick_run_matches_unsharded_threads_1() {
    let drivers: Vec<String> = figures::all()
        .iter()
        .map(|(e, _)| e.name.to_string())
        .collect();
    let orch = Orchestrator::new(LocalBackend::new(quick_args()), 2);
    let report = orch
        .run(&Plan {
            drivers: drivers.clone(),
            shards: 4,
            retries: 0,
        })
        .expect("orchestrated quick run succeeds");
    assert_eq!(report.drivers.len(), 20);

    let serial = Ctx::new(ExptArgs {
        threads: 1,
        ..quick_args()
    });
    for ((exp, build), run) in figures::all().into_iter().zip(&report.drivers) {
        assert_eq!(exp.name, run.driver);
        let unsharded: Vec<Table> = build(&serial);
        assert_eq!(
            unsharded.len(),
            run.merged.len(),
            "{}: table count differs",
            exp.name
        );
        for (t, merged) in unsharded.iter().zip(&run.merged) {
            assert_eq!(t.name, merged.table, "{}: table order differs", exp.name);
            assert_eq!(
                merged.to_csv(),
                t.to_csv(),
                "{}/{}: merged CSV differs from unsharded --threads 1",
                exp.name,
                t.name
            );
        }
    }
}

/// Dropping one shard document from a persisted run must fail
/// validation with `MergeError::MissingPointIndex` naming the dropped
/// point — the self-validating half of the acceptance bar.
#[test]
fn dropped_shard_fails_with_missing_point_index() {
    let out = std::env::temp_dir().join(format!("orch-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let orch = Orchestrator::new(LocalBackend::new(quick_args()), 2);
    let report = orch
        .run(&Plan {
            drivers: vec!["fig11_fault_tolerance".to_string()],
            shards: 3,
            retries: 0,
        })
        .unwrap();
    expt::orchestrate::write_run(&out, &report).unwrap();
    assert!(!validate_dir(&out).unwrap().is_empty());

    // Injected dropped shard.
    std::fs::remove_file(out.join("fig11_fault_tolerance/shards/connectivity_loss.shard1of3.json"))
        .unwrap();
    match validate_dir(&out).unwrap_err() {
        OrchestrateError::Merge {
            driver,
            error:
                MergeError::MissingPointIndex {
                    point,
                    expected_shard,
                    ..
                },
        } => {
            assert_eq!(driver, "fig11_fault_tolerance");
            assert_eq!(point, 1);
            assert_eq!(expected_shard, 1);
        }
        other => panic!("expected MissingPointIndex, got: {other}"),
    }
    std::fs::remove_dir_all(&out).unwrap();
}
