//! Tier-1 acceptance tests for the sweep orchestrator: merged sharded
//! output must be byte-identical to unsharded `--threads 1` runs for
//! **every** driver, an injected dropped shard must fail with the named
//! missing-point-index error, retried jobs must reproduce their shard
//! documents bit-for-bit, and an interrupted run must resume to a
//! byte-identical final merge without re-running completed shards.

use bench::backend::LocalBackend;
use bench::figures;
use expt::orchestrate::{validate_dir, Backend, OrchestrateError, Orchestrator, Plan, ShardJob};
use expt::output::MergeError;
use expt::runfile::{resume_run, RunManifest, RunWriter, RUN_FILE};
use expt::{Ctx, ExptArgs, Scale, Table};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn quick_args() -> ExptArgs {
    ExptArgs {
        scale: Scale::Quick,
        no_write: true,
        ..ExptArgs::default()
    }
}

/// The acceptance bar from the issue: `opera_orchestrate --drivers all
/// --shards 4 --quick` produces CSVs byte-identical to unsharded
/// `--threads 1` runs for all 20 drivers.
#[test]
fn orchestrated_4_shard_quick_run_matches_unsharded_threads_1() {
    let drivers: Vec<String> = figures::all()
        .iter()
        .map(|(e, _)| e.name.to_string())
        .collect();
    let orch = Orchestrator::new(LocalBackend::new(quick_args()), 2);
    let report = orch
        .run(&Plan {
            drivers: drivers.clone(),
            shards: 4,
            retries: 0,
        })
        .expect("orchestrated quick run succeeds");
    assert_eq!(report.drivers.len(), 20);

    let serial = Ctx::new(ExptArgs {
        threads: 1,
        ..quick_args()
    });
    for ((exp, build), run) in figures::all().into_iter().zip(&report.drivers) {
        assert_eq!(exp.name, run.driver);
        let unsharded: Vec<Table> = build(&serial);
        assert_eq!(
            unsharded.len(),
            run.merged.len(),
            "{}: table count differs",
            exp.name
        );
        // Merged tables come back in canonical (sorted-by-name) order,
        // independent of the driver's emission order; match by name.
        for t in &unsharded {
            let merged = run
                .merged
                .iter()
                .find(|m| m.table == t.name)
                .unwrap_or_else(|| panic!("{}: table {} missing from merge", exp.name, t.name));
            assert_eq!(
                merged.to_csv(),
                t.to_csv(),
                "{}/{}: merged CSV differs from unsharded --threads 1",
                exp.name,
                t.name
            );
        }
    }
}

/// Dropping one shard document from a persisted run must fail
/// validation with `MergeError::MissingPointIndex` naming the dropped
/// point — the self-validating half of the acceptance bar.
#[test]
fn dropped_shard_fails_with_missing_point_index() {
    let out = std::env::temp_dir().join(format!("orch-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let orch = Orchestrator::new(LocalBackend::new(quick_args()), 2);
    let report = orch
        .run(&Plan {
            drivers: vec!["fig11_fault_tolerance".to_string()],
            shards: 3,
            retries: 0,
        })
        .unwrap();
    expt::orchestrate::write_run(&out, &report).unwrap();
    assert!(!validate_dir(&out).unwrap().is_empty());

    // Injected dropped shard.
    std::fs::remove_file(out.join("fig11_fault_tolerance/shards/connectivity_loss.shard1of3.json"))
        .unwrap();
    match validate_dir(&out).unwrap_err() {
        OrchestrateError::Merge {
            driver,
            error:
                MergeError::MissingPointIndex {
                    point,
                    expected_shard,
                    ..
                },
        } => {
            assert_eq!(driver, "fig11_fault_tolerance");
            assert_eq!(point, 1);
            assert_eq!(expected_shard, 1);
        }
        other => panic!("expected MissingPointIndex, got: {other}"),
    }
    std::fs::remove_dir_all(&out).unwrap();
}

const DRIVER: &str = "fig14_cycle_time_scaling";

/// Fails every job's *first* attempt, then delegates to the real
/// in-process backend.
struct FlakyOnce {
    inner: LocalBackend,
    failed: Mutex<HashSet<String>>,
}

impl Backend for FlakyOnce {
    fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
        let key = format!("{}:{}", job.driver, job.shard.0);
        if self.failed.lock().unwrap().insert(key) {
            return Err("injected transient failure".into());
        }
        self.inner.run_shard(job)
    }
}

/// Satellite bar: a job that fails once and succeeds on retry must
/// produce shard documents byte-identical to a first-try success —
/// per-point seeds derive from the plan, never from the attempt.
#[test]
fn retried_jobs_are_bit_deterministic() {
    let plan = Plan {
        drivers: vec![DRIVER.to_string()],
        shards: 2,
        retries: 1,
    };
    let flaky = Orchestrator::new(
        FlakyOnce {
            inner: LocalBackend::new(quick_args()),
            failed: Mutex::new(HashSet::new()),
        },
        2,
    );
    let retried = flaky
        .run(&plan)
        .expect("retry budget absorbs one failure per job");
    assert_eq!(retried.drivers[0].retried, 2, "both jobs failed once");

    let clean = Orchestrator::new(LocalBackend::new(quick_args()), 2)
        .run(&plan)
        .unwrap();
    for (shard, (a, b)) in retried.drivers[0]
        .shard_docs
        .iter()
        .zip(&clean.drivers[0].shard_docs)
        .enumerate()
    {
        assert_eq!(a.len(), b.len());
        for (da, db) in a.iter().zip(b) {
            assert_eq!(
                da.render(),
                db.render(),
                "{DRIVER} shard {shard} table {}: retried document differs from first-try",
                da.table
            );
        }
    }
}

/// Delegates to the real backend for the first `successes` jobs, then
/// fails everything — simulating a run killed partway through. With
/// one worker and retries 0, exactly the first `successes` jobs in
/// plan order complete.
struct FailAfter {
    inner: LocalBackend,
    successes: usize,
    started: AtomicUsize,
}

impl Backend for FailAfter {
    fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
        if self.started.fetch_add(1, Ordering::SeqCst) >= self.successes {
            return Err("simulated kill".into());
        }
        self.inner.run_shard(job)
    }
}

/// Records which jobs it actually ran — the proof that resume does not
/// re-run completed shards.
struct CountingLocal {
    inner: LocalBackend,
    ran: Mutex<Vec<String>>,
}

impl CountingLocal {
    fn new() -> Self {
        CountingLocal {
            inner: LocalBackend::new(quick_args()),
            ran: Mutex::new(Vec::new()),
        }
    }
}

impl Backend for CountingLocal {
    fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
        self.ran
            .lock()
            .unwrap()
            .push(format!("{}:{}", job.driver, job.shard.0));
        self.inner.run_shard(job)
    }
}

/// Satellite bar: kill a 3-shard run after 2 shards persist, `resume`,
/// and the merged CSV is byte-identical to an uninterrupted run — with
/// the completed shards *not* re-run. Then corrupt one persisted shard
/// document and resume again: the corruption is detected and only that
/// shard re-runs.
#[test]
fn interrupted_run_resumes_to_byte_identical_merge() {
    let out = std::env::temp_dir().join(format!("orch-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let plan = Plan {
        drivers: vec![DRIVER.to_string()],
        shards: 3,
        retries: 0,
    };

    // The reference: what an uninterrupted unsharded --threads 1 run
    // renders.
    let serial = Ctx::new(ExptArgs {
        threads: 1,
        ..quick_args()
    });
    let (_, build) = figures::all()
        .into_iter()
        .find(|(e, _)| e.name == DRIVER)
        .unwrap();
    let reference: Vec<Table> = build(&serial);

    // Interrupted run: one worker, jobs in plan order, killed after 2
    // of 3 shards.
    let writer = RunWriter::create(&out, RunManifest::new(&plan, "local", &quick_args())).unwrap();
    let orch = Orchestrator::new(
        FailAfter {
            inner: LocalBackend::new(quick_args()),
            successes: 2,
            started: AtomicUsize::new(0),
        },
        1,
    );
    let err = orch.run_observed(&plan, &writer).unwrap_err();
    assert!(matches!(err, OrchestrateError::Job { .. }));
    drop(writer);

    // The two completed shards are already durable.
    for table in ["cycle_time", "bulk_threshold_mb"] {
        for shard in 0..2 {
            assert!(
                out.join(DRIVER)
                    .join(format!("shards/{table}.shard{shard}of3.json"))
                    .is_file(),
                "{table} shard {shard} should have been persisted before the kill"
            );
        }
    }
    let manifest = RunManifest::read(&out.join(RUN_FILE)).unwrap();
    assert!(!manifest.complete);

    // Resume: only shard 2 runs; the merge is byte-identical to the
    // uninterrupted reference.
    let backend = CountingLocal::new();
    let report = resume_run(&out, &backend, 2).unwrap();
    assert_eq!(report.reused, 2);
    assert_eq!(report.rerun.len(), 1);
    assert_eq!(report.rerun[0].job.shard, (2, 3));
    assert_eq!(
        backend.ran.lock().unwrap().as_slice(),
        [format!("{DRIVER}:2")],
        "resume must not re-run completed shards"
    );
    for t in &reference {
        let csv =
            std::fs::read_to_string(out.join(DRIVER).join(format!("{}.csv", t.name))).unwrap();
        assert_eq!(
            csv,
            t.to_csv(),
            "{}: resumed merge differs from uninterrupted --threads 1 run",
            t.name
        );
    }
    assert!(!validate_dir(&out).unwrap().is_empty());
    assert!(RunManifest::read(&out.join(RUN_FILE)).unwrap().complete);

    // Corrupt (truncate) one persisted shard document: resume must
    // detect it, re-run exactly that shard, and restore identical
    // bytes.
    let victim = out.join(DRIVER).join("shards/cycle_time.shard1of3.json");
    let text = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, &text[..text.len() / 2]).unwrap();
    let backend = CountingLocal::new();
    let report = resume_run(&out, &backend, 2).unwrap();
    assert_eq!(report.reused, 2);
    assert_eq!(report.rerun.len(), 1);
    assert_eq!(report.rerun[0].job.shard, (1, 3));
    assert_eq!(
        backend.ran.lock().unwrap().as_slice(),
        [format!("{DRIVER}:1")],
        "only the corrupt shard re-runs"
    );
    assert!(
        report.rerun[0].reason.contains("corrupt"),
        "{}",
        report.rerun[0].reason
    );
    assert_eq!(std::fs::read_to_string(&victim).unwrap(), text);
    for t in &reference {
        let csv =
            std::fs::read_to_string(out.join(DRIVER).join(format!("{}.csv", t.name))).unwrap();
        assert_eq!(csv, t.to_csv());
    }
    std::fs::remove_dir_all(&out).unwrap();
}
